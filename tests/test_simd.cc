/**
 * @file
 * Scalar-vs-SIMD parity suite for the dispatched stats kernels
 * (stats/simd.hh). The scalar path is the oracle; every vector level the
 * host supports must reproduce it bit for bit — on deliberately awkward
 * shapes (empty, n = 1, every remainder class around the 8-lane main
 * loop), degenerate data (all-zero rows, stddevs at and around
 * kStddevEpsilon), the cached-distance/tie-breaking scan contract, the
 * fused projectRows kernel across thread counts and block sizes, and the
 * keystone mini-pipeline. Also locks down dispatch resolution, the
 * aligned-allocation helpers, and the counted rowNorms accounting.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/pipeline.hh"
#include "stats/distance.hh"
#include "stats/matrix.hh"
#include "stats/projection.hh"
#include "stats/rng.hh"
#include "stats/simd.hh"
#include "stats/summary.hh"
#include "util/aligned.hh"

namespace {

using namespace mica;
using stats::Matrix;
namespace simd = stats::simd;

/** Bit pattern of a double, so ±0.0 and NaN payloads compare strictly. */
std::uint64_t
bits(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

/** Vector levels this binary + host can actually run. */
std::vector<simd::Level>
supportedVectorLevels()
{
    std::vector<simd::Level> out;
    for (const simd::Level l : {simd::Level::Avx2, simd::Level::Neon})
        if (simd::levelSupported(l))
            out.push_back(l);
    return out;
}

/** RAII dispatch-level override (restores the previous level). */
class LevelGuard
{
  public:
    explicit LevelGuard(simd::Level level) : saved_(simd::activeLevel())
    {
        EXPECT_TRUE(simd::setLevel(level));
    }
    ~LevelGuard() { simd::setLevel(saved_); }

  private:
    simd::Level saved_;
};

std::vector<double>
randomVector(std::size_t n, std::uint64_t seed)
{
    stats::Rng rng(seed);
    std::vector<double> v(n);
    for (double &x : v)
        x = rng.nextGaussian() * 3.0;
    return v;
}

/** Lengths covering every remainder class of the 8-wide main loop plus
 *  the serving-realistic p=69. */
const std::size_t kLengths[] = {0,  1,  2,  3,  4,  5,  6,  7,  8,
                                9,  15, 16, 17, 31, 64, 69, 131};

// ------------------------------------------------------------- dispatch

TEST(SimdDispatch, ScalarAlwaysSupportedAndNamed)
{
    EXPECT_TRUE(simd::levelSupported(simd::Level::Scalar));
    EXPECT_EQ(simd::levelName(simd::Level::Scalar), "scalar");
    EXPECT_EQ(simd::levelName(simd::Level::Avx2), "avx2");
    EXPECT_EQ(simd::levelName(simd::Level::Neon), "neon");
}

TEST(SimdDispatch, ParseLevelNames)
{
    EXPECT_EQ(simd::parseLevelName("off"), simd::Level::Scalar);
    EXPECT_EQ(simd::parseLevelName("scalar"), simd::Level::Scalar);
    EXPECT_EQ(simd::parseLevelName("avx2"), simd::Level::Avx2);
    EXPECT_EQ(simd::parseLevelName("neon"), simd::Level::Neon);
    EXPECT_EQ(simd::parseLevelName("auto"), simd::bestSupportedLevel());
    EXPECT_FALSE(simd::parseLevelName("sse9").has_value());
    EXPECT_FALSE(simd::parseLevelName("").has_value());
}

TEST(SimdDispatch, BestSupportedLevelIsSupported)
{
    EXPECT_TRUE(simd::levelSupported(simd::bestSupportedLevel()));
    if (!simd::compiledWithSimd()) {
        EXPECT_EQ(simd::bestSupportedLevel(), simd::Level::Scalar);
    }
}

TEST(SimdDispatch, SetLevelRoundTripsAndRejectsUnsupported)
{
    const simd::Level before = simd::activeLevel();
    ASSERT_TRUE(simd::setLevel(simd::Level::Scalar));
    EXPECT_EQ(simd::activeLevel(), simd::Level::Scalar);
    for (const simd::Level l : {simd::Level::Avx2, simd::Level::Neon}) {
        if (simd::levelSupported(l)) {
            EXPECT_TRUE(simd::setLevel(l));
            EXPECT_EQ(simd::activeLevel(), l);
        } else {
            EXPECT_FALSE(simd::setLevel(l));
            // A rejected request must not change the dispatch.
            EXPECT_NE(simd::activeLevel(), l);
        }
    }
    ASSERT_TRUE(simd::setLevel(before));
}

// ------------------------------------------------------- aligned buffers

TEST(SimdAligned, AlignedAllocReturnsCacheLineAlignedMemory)
{
    for (const std::size_t bytes : {1ul, 7ul, 64ul, 100ul, 4096ul}) {
        void *p = util::alignedAlloc(bytes);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) %
                      util::kCacheLineBytes,
                  0u);
        std::free(p);
    }
}

TEST(SimdAligned, MatrixStorageIsCacheLineAligned)
{
    for (const std::size_t cols : {1ul, 5ul, 69ul}) {
        const Matrix m(17, cols);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data().data()) %
                      util::kCacheLineBytes,
                  0u)
            << "cols=" << cols;
    }
    // Growth via appendRow must land on aligned storage too.
    Matrix grown;
    for (int r = 0; r < 9; ++r) {
        const std::vector<double> row(13, static_cast<double>(r));
        grown.appendRow(row);
    }
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(grown.data().data()) %
                  util::kCacheLineBytes,
              0u);
}

// -------------------------------------------------------- kernel parity

TEST(SimdKernels, SquaredDistanceMatchesScalarBitwise)
{
    const auto levels = supportedVectorLevels();
    if (levels.empty())
        GTEST_SKIP() << "no vector backend on this host";
    for (const std::size_t n : kLengths) {
        const std::vector<double> a = randomVector(n, 101 + n);
        const std::vector<double> b = randomVector(n, 202 + n);
        LevelGuard scalar(simd::Level::Scalar);
        const double want = simd::squaredDistance(a.data(), b.data(), n);
        for (const simd::Level l : levels) {
            LevelGuard guard(l);
            const double got = simd::squaredDistance(a.data(), b.data(), n);
            EXPECT_EQ(bits(got), bits(want))
                << simd::levelName(l) << " n=" << n;
        }
    }
}

TEST(SimdKernels, BatchSquaredDistanceMatchesSingleCallBitwise)
{
    // The gather batch must agree with per-pair squaredDistance at every
    // level, across the specialized widths (8, 16) and the generic path,
    // with out-of-order and repeated row ids like a real neighbor list.
    for (const std::size_t m : {std::size_t{3}, std::size_t{8},
                                std::size_t{16}, std::size_t{21}}) {
        constexpr std::size_t kRows = 37;
        const std::vector<double> rows = randomVector(kRows * m, 404 + m);
        const std::vector<double> point = randomVector(m, 505 + m);
        std::vector<std::uint32_t> ids;
        for (std::size_t i = 0; i < kRows * 2; ++i)
            ids.push_back(static_cast<std::uint32_t>((i * 29 + 11) % kRows));
        std::vector<double> out(ids.size());

        std::vector<simd::Level> levels = supportedVectorLevels();
        levels.push_back(simd::Level::Scalar);
        for (const simd::Level l : levels) {
            LevelGuard guard(l);
            simd::batchSquaredDistance(point.data(), rows.data(), m,
                                       ids.data(), ids.size(), out.data());
            for (std::size_t i = 0; i < ids.size(); ++i) {
                const double want = simd::squaredDistance(
                    point.data(), rows.data() + ids[i] * m, m);
                ASSERT_EQ(bits(out[i]), bits(want))
                    << simd::levelName(l) << " m=" << m << " i=" << i;
            }
        }
    }
}

TEST(SimdKernels, SumSquaresMatchesScalarBitwise)
{
    const auto levels = supportedVectorLevels();
    if (levels.empty())
        GTEST_SKIP() << "no vector backend on this host";
    for (const std::size_t n : kLengths) {
        const std::vector<double> a = randomVector(n, 303 + n);
        LevelGuard scalar(simd::Level::Scalar);
        const double want = simd::sumSquares(a.data(), n);
        for (const simd::Level l : levels) {
            LevelGuard guard(l);
            const double got = simd::sumSquares(a.data(), n);
            EXPECT_EQ(bits(got), bits(want))
                << simd::levelName(l) << " n=" << n;
        }
    }
}

TEST(SimdKernels, AxpyMatchesScalarBitwise)
{
    const auto levels = supportedVectorLevels();
    if (levels.empty())
        GTEST_SKIP() << "no vector backend on this host";
    for (const std::size_t n : kLengths) {
        const std::vector<double> x = randomVector(n, 404 + n);
        const std::vector<double> y0 = randomVector(n, 505 + n);
        for (const double a : {0.0, -1.75, 2.5e-3, 1.0e7}) {
            std::vector<double> want = y0;
            {
                LevelGuard scalar(simd::Level::Scalar);
                simd::axpy(a, x.data(), want.data(), n);
            }
            for (const simd::Level l : levels) {
                std::vector<double> got = y0;
                LevelGuard guard(l);
                simd::axpy(a, x.data(), got.data(), n);
                EXPECT_EQ(std::memcmp(got.data(), want.data(),
                                      n * sizeof(double)),
                          0)
                    << simd::levelName(l) << " n=" << n << " a=" << a;
            }
        }
    }
}

/** Stddev vectors exercising the sd > kStddevEpsilon guard exactly at,
 *  below, and just above the threshold (plus plain columns). */
std::vector<double>
awkwardStddev(std::size_t n)
{
    std::vector<double> sd(n);
    for (std::size_t i = 0; i < n; ++i) {
        switch (i % 5) {
        case 0:
            sd[i] = 0.0; // dead column
            break;
        case 1:
            sd[i] = stats::kStddevEpsilon; // exactly at: still dead
            break;
        case 2:
            sd[i] = stats::kStddevEpsilon * 1.0000001; // barely alive
            break;
        case 3:
            sd[i] = 1.0;
            break;
        default:
            sd[i] = 0.3 + static_cast<double>(i);
            break;
        }
    }
    return sd;
}

TEST(SimdKernels, NormalizeMatchesScalarBitwise)
{
    const auto levels = supportedVectorLevels();
    if (levels.empty())
        GTEST_SKIP() << "no vector backend on this host";
    for (const std::size_t n : kLengths) {
        const std::vector<double> src = randomVector(n, 606 + n);
        const std::vector<double> mean = randomVector(n, 707 + n);
        const std::vector<double> sd = awkwardStddev(n);
        std::vector<double> want(n, -1.0);
        {
            LevelGuard scalar(simd::Level::Scalar);
            simd::normalize(src.data(), mean.data(), sd.data(), want.data(),
                            n, stats::kStddevEpsilon);
        }
        for (const simd::Level l : levels) {
            std::vector<double> got(n, -1.0);
            LevelGuard guard(l);
            simd::normalize(src.data(), mean.data(), sd.data(), got.data(),
                            n, stats::kStddevEpsilon);
            EXPECT_EQ(
                std::memcmp(got.data(), want.data(), n * sizeof(double)), 0)
                << simd::levelName(l) << " n=" << n;
        }
    }
}

TEST(SimdKernels, RescaleMatchesScalarBitwise)
{
    const auto levels = supportedVectorLevels();
    if (levels.empty())
        GTEST_SKIP() << "no vector backend on this host";
    for (const std::size_t n : kLengths) {
        const std::vector<double> v0 = randomVector(n, 808 + n);
        const std::vector<double> sd = awkwardStddev(n);
        std::vector<double> want = v0;
        {
            LevelGuard scalar(simd::Level::Scalar);
            simd::rescale(want.data(), sd.data(), n, stats::kStddevEpsilon);
        }
        for (const simd::Level l : levels) {
            std::vector<double> got = v0;
            LevelGuard guard(l);
            simd::rescale(got.data(), sd.data(), n, stats::kStddevEpsilon);
            EXPECT_EQ(
                std::memcmp(got.data(), want.data(), n * sizeof(double)), 0)
                << simd::levelName(l) << " n=" << n;
        }
    }
}

TEST(SimdKernels, NearestCenterScanMatchesScalarWithTiesAndCache)
{
    const auto levels = supportedVectorLevels();
    if (levels.empty())
        GTEST_SKIP() << "no vector backend on this host";
    for (const std::size_t m : {1ul, 3ul, 8ul, 69ul}) {
        Matrix centers;
        const std::vector<double> base = randomVector(m, 909 + m);
        for (int c = 0; c < 7; ++c) {
            std::vector<double> row = randomVector(m, 17 * c + m);
            centers.appendRow(row);
        }
        // Force an exact tie: two identical centers (lowest index must
        // win at every level).
        centers.appendRow(centers.row(2));
        const std::vector<double> point = randomVector(m, 999 + m);
        const std::size_t k = centers.rows();

        for (const std::size_t cached :
             {static_cast<std::size_t>(-1), 0ul, 3ul}) {
            double cached_d2 = 0.0;
            {
                LevelGuard scalar(simd::Level::Scalar);
                if (cached < k)
                    cached_d2 = simd::squaredDistance(
                        point.data(), centers.row(cached).data(), m);
            }
            simd::ScanHit want;
            {
                LevelGuard scalar(simd::Level::Scalar);
                want = simd::nearestCenterScan(point.data(),
                                               centers.data().data(), k, m,
                                               cached, cached_d2);
            }
            for (const simd::Level l : levels) {
                LevelGuard guard(l);
                const simd::ScanHit got = simd::nearestCenterScan(
                    point.data(), centers.data().data(), k, m, cached,
                    cached_d2);
                EXPECT_EQ(got.index, want.index)
                    << simd::levelName(l) << " m=" << m;
                EXPECT_EQ(bits(got.dist2), bits(want.dist2))
                    << simd::levelName(l) << " m=" << m;
                EXPECT_EQ(bits(got.second_dist2), bits(want.second_dist2))
                    << simd::levelName(l) << " m=" << m;
            }
        }
    }
}

TEST(SimdKernels, AllZeroRowsAndPointsStayExactZero)
{
    // Degenerate data must produce exact zeros at every level (the
    // pipeline's dead-column handling depends on it).
    const std::size_t n = 69;
    const std::vector<double> zeros(n, 0.0);
    std::vector<simd::Level> all = {simd::Level::Scalar};
    for (const simd::Level l : supportedVectorLevels())
        all.push_back(l);
    for (const simd::Level l : all) {
        LevelGuard guard(l);
        EXPECT_EQ(bits(simd::squaredDistance(zeros.data(), zeros.data(), n)),
                  bits(0.0))
            << simd::levelName(l);
        EXPECT_EQ(bits(simd::sumSquares(zeros.data(), n)), bits(0.0))
            << simd::levelName(l);
    }
}

TEST(SimdKernels, RowNormsCountedInDistanceCounters)
{
    Matrix m(5, 7);
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            m(r, c) = static_cast<double>(r) - static_cast<double>(c);
    stats::DistanceCounters counters;
    const std::vector<double> norms = stats::rowNorms(m, &counters);
    EXPECT_EQ(norms.size(), 5u);
    EXPECT_EQ(counters.norms, 5u);
    EXPECT_EQ(counters.computed, 0u);

    // Accumulation folds norms like the other counters.
    stats::DistanceCounters total;
    total += counters;
    total += counters;
    EXPECT_EQ(total.norms, 10u);

    // And the no-counter overload still works.
    const std::vector<double> again = stats::rowNorms(m);
    EXPECT_EQ(std::memcmp(again.data(), norms.data(),
                          norms.size() * sizeof(double)),
              0);
}

// --------------------------------------------------- projection parity

TEST(SimdProjection, ProjectRowsBitwiseAcrossLevelsThreadsAndBlocks)
{
    const std::size_t p = 69, m = 9, k = 11, n = 257;
    const std::vector<double> mean = randomVector(p, 1);
    const std::vector<double> sd = awkwardStddev(p);
    const std::vector<double> rescale_sd = awkwardStddev(m);
    Matrix loadings(p, m);
    stats::Rng lrng(2);
    for (std::size_t r = 0; r < p; ++r)
        for (std::size_t c = 0; c < m; ++c)
            loadings(r, c) = lrng.nextGaussian();
    Matrix centers(k, m);
    for (std::size_t r = 0; r < k; ++r)
        for (std::size_t c = 0; c < m; ++c)
            centers(r, c) = lrng.nextGaussian();
    Matrix rows(n, p);
    stats::Rng rrng(3);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < p; ++c)
            // Sprinkle exact zeros so the a == 0.0 zero-skip fires.
            rows(r, c) = (r + c) % 11 == 0 ? 0.0 : rrng.nextGaussian();
    // One all-zero row.
    for (std::size_t c = 0; c < p; ++c)
        rows(100, c) = 0.0;

    for (const bool normalize : {true, false}) {
        stats::ProjectionSpec spec;
        spec.normalize_input = normalize;
        spec.mean = mean;
        spec.stddev = sd;
        spec.loadings = loadings.view();
        spec.rescale_sd = rescale_sd;
        spec.centers = centers.view();

        stats::ProjectedRows want;
        {
            LevelGuard scalar(simd::Level::Scalar);
            stats::ProjectOptions opts;
            opts.threads = 1;
            want = stats::projectRows(spec, rows.view(), opts);
        }

        std::vector<simd::Level> all = {simd::Level::Scalar};
        for (const simd::Level l : supportedVectorLevels())
            all.push_back(l);
        for (const simd::Level l : all) {
            LevelGuard guard(l);
            for (const unsigned threads : {1u, 2u, 4u}) {
                for (const std::size_t block : {1ul, 7ul, 1024ul}) {
                    stats::ProjectOptions opts;
                    opts.threads = threads;
                    opts.block_rows = block;
                    const stats::ProjectedRows got =
                        stats::projectRows(spec, rows.view(), opts);
                    SCOPED_TRACE(std::string(simd::levelName(l)) +
                                 " threads=" + std::to_string(threads) +
                                 " block=" + std::to_string(block) +
                                 " normalize=" + std::to_string(normalize));
                    EXPECT_EQ(got.assignment, want.assignment);
                    EXPECT_EQ(std::memcmp(got.reduced.data().data(),
                                          want.reduced.data().data(),
                                          want.reduced.data().size() *
                                              sizeof(double)),
                              0);
                    EXPECT_EQ(std::memcmp(got.dist2.data(),
                                          want.dist2.data(),
                                          want.dist2.size() *
                                              sizeof(double)),
                              0);
                }
            }
        }
    }
}

// ----------------------------------------------------- keystone pipeline

TEST(SimdPipeline, MiniExperimentBitwiseAcrossLevels)
{
    // The whole pipeline — characterization, sampling, PCA, k-means,
    // suite comparison — must not notice which kernel backend ran.
    const auto levels = supportedVectorLevels();
    if (levels.empty())
        GTEST_SKIP() << "no vector backend on this host";

    core::ExperimentConfig cfg;
    cfg.interval_instructions = 2000;
    cfg.interval_scale = 0.02;
    cfg.samples_per_benchmark = 10;
    cfg.kmeans_k = 12;
    cfg.kmeans_restarts = 1;
    cfg.num_prominent = 8;
    cfg.threads = 2;
    cfg.cache_dir.clear();

    core::ExperimentOutputs want;
    {
        LevelGuard scalar(simd::Level::Scalar);
        want = core::runFullExperiment(cfg);
    }
    for (const simd::Level l : levels) {
        LevelGuard guard(l);
        const core::ExperimentOutputs got = core::runFullExperiment(cfg);
        SCOPED_TRACE(simd::levelName(l));
        EXPECT_EQ(got.sampled.data.maxAbsDiff(want.sampled.data), 0.0);
        EXPECT_EQ(got.analysis.reduced.maxAbsDiff(want.analysis.reduced),
                  0.0);
        EXPECT_EQ(got.analysis.clustering.assignment,
                  want.analysis.clustering.assignment);
        EXPECT_EQ(got.analysis.clustering.inertia,
                  want.analysis.clustering.inertia);
        EXPECT_EQ(got.analysis.clustering.centers.maxAbsDiff(
                      want.analysis.clustering.centers),
                  0.0);
        EXPECT_EQ(got.comparison.coverage, want.comparison.coverage);
        EXPECT_EQ(got.comparison.uniqueness, want.comparison.uniqueness);
    }
}

} // namespace
