/**
 * @file
 * Unit tests for the ideal-window ILP analyzer.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "mica/ilp.hh"
#include "vm/cpu.hh"

namespace {

using namespace mica;
using profiler::IlpAnalyzer;
using profiler::kIlpWindows;
using profiler::kNumIlpWindows;

/** Run a program through the analyzer and close one interval. */
std::array<double, kNumIlpWindows>
measure(const std::string &source, std::uint64_t budget = 100000)
{
    const auto prog = assembler::assemble(source);
    vm::Cpu cpu(prog);

    struct Sink : vm::TraceSink
    {
        IlpAnalyzer ilp;
        void onInstruction(const vm::DynInstr &d) override
        {
            ilp.onInstruction(d);
        }
    } sink;
    (void)cpu.run(budget, &sink);
    return sink.ilp.closeInterval();
}

TEST(Ilp, SerialChainHasIpcNearOne)
{
    // Every instruction depends on the previous through x5; only the
    // branch/counter pair adds slack.
    const auto ipc = measure(R"(
        addi x6, x0, 2000
    loop:
        add x5, x5, x5
        add x5, x5, x5
        add x5, x5, x5
        add x5, x5, x5
        addi x6, x6, -1
        bne x6, x0, loop
        halt
    )");
    for (double v : ipc) {
        EXPECT_GT(v, 0.9);
        EXPECT_LT(v, 1.8);
    }
}

TEST(Ilp, IndependentStreamScalesWithWindow)
{
    // 16 independent add chains: plenty of parallelism, so larger windows
    // must extract strictly more IPC until saturation.
    std::string body;
    for (int i = 5; i < 21; ++i)
        body += "add x" + std::to_string(i) + ", x" + std::to_string(i) +
                ", x31\n";
    const auto ipc = measure("addi x30, x0, 500\nloop:\n" + body +
                             "addi x30, x30, -1\nbne x30, x0, loop\nhalt");
    EXPECT_GT(ipc[0], 8.0);
    for (std::size_t w = 1; w < kNumIlpWindows; ++w)
        EXPECT_GE(ipc[w], ipc[w - 1] - 1e-9)
            << "window " << kIlpWindows[w];
}

TEST(Ilp, IpcBoundedByWindowSize)
{
    std::string body;
    for (int i = 5; i < 25; ++i)
        body += "addi x" + std::to_string(i) + ", x0, 1\n";
    const auto ipc = measure("addi x30, x0, 500\nloop:\n" + body +
                             "addi x30, x30, -1\nbne x30, x0, loop\nhalt");
    for (std::size_t w = 0; w < kNumIlpWindows; ++w)
        EXPECT_LE(ipc[w], static_cast<double>(kIlpWindows[w]) + 1e-9);
}

TEST(Ilp, StoreToLoadDependenceSerializes)
{
    // A tight pointer-increment loop through memory: every load depends on
    // the previous store to the same address.
    const auto serial = measure(R"(
        .data
        cell: .word64 0
        .text
        addi x6, x0, 2000
    loop:
        ld x5, cell(x0)
        addi x5, x5, 1
        sd x5, cell(x0)
        addi x6, x6, -1
        bne x6, x0, loop
        halt
    )");
    // The same loop without the memory round trip.
    const auto reg_only = measure(R"(
        addi x6, x0, 2000
    loop:
        addi x5, x5, 1
        addi x6, x6, -1
        bne x6, x0, loop
        halt
    )");
    // Memory carried dependence must not be faster than the register loop
    // scaled by instruction count; in particular it must stay low.
    EXPECT_LT(serial[3], 3.0);
    EXPECT_GT(reg_only[3], 1.0);
}

TEST(Ilp, LoadsFromDistinctAddressesAreParallel)
{
    const auto ipc = measure(R"(
        .data
        buf: .zero 512
        .text
        addi x30, x0, 500
        addi x4, x0, buf
    loop:
        ld x5, 0(x4)
        ld x6, 8(x4)
        ld x7, 16(x4)
        ld x8, 24(x4)
        addi x30, x30, -1
        bne x30, x0, loop
        halt
    )");
    EXPECT_GT(ipc[1], 3.0);
}

TEST(Ilp, IntervalDeltasAreIndependent)
{
    const auto prog = assembler::assemble(R"(
        addi x6, x0, 100000
    loop:
        add x5, x5, x5
        addi x6, x6, -1
        bne x6, x0, loop
        halt
    )");
    vm::Cpu cpu(prog);
    struct Sink : vm::TraceSink
    {
        IlpAnalyzer ilp;
        void onInstruction(const vm::DynInstr &d) override
        {
            ilp.onInstruction(d);
        }
    } sink;
    (void)cpu.run(3000, &sink);
    const auto first = sink.ilp.closeInterval();
    (void)cpu.run(3000, &sink);
    const auto second = sink.ilp.closeInterval();
    // Steady-state loop: both intervals should look alike.
    for (std::size_t w = 0; w < kNumIlpWindows; ++w)
        EXPECT_NEAR(first[w], second[w], 0.2);
}

TEST(Ilp, InstructionCountAdvances)
{
    IlpAnalyzer ilp;
    EXPECT_EQ(ilp.instructionCount(), 0u);
    isa::Instruction nop{isa::Opcode::Nop, 0, 0, 0, 0};
    vm::DynInstr dyn;
    dyn.instr = &nop;
    for (int i = 0; i < 5; ++i)
        ilp.onInstruction(dyn);
    EXPECT_EQ(ilp.instructionCount(), 5u);
}

TEST(Ilp, EmptyIntervalYieldsZero)
{
    IlpAnalyzer ilp;
    const auto ipc = ilp.closeInterval();
    for (double v : ipc)
        EXPECT_EQ(v, 0.0);
}

} // namespace
