/**
 * @file
 * Unit tests for the deterministic PRNG substrate.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "stats/rng.hh"

namespace {

using mica::stats::Rng;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.nextU64() == b.nextU64();
    EXPECT_LT(same, 3);
}

TEST(Rng, SplitMix64IsDeterministic)
{
    std::uint64_t s1 = 7, s2 = 7;
    EXPECT_EQ(mica::stats::splitMix64(s1), mica::stats::splitMix64(s2));
    EXPECT_EQ(s1, s2);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(3);
    for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowOneAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i)
        ASSERT_EQ(rng.nextBelow(1), 0u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.nextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
    }
}

TEST(Rng, UniformRange)
{
    Rng rng(6);
    for (int i = 0; i < 500; ++i) {
        const double v = rng.uniform(-3.0, 5.0);
        ASSERT_GE(v, -3.0);
        ASSERT_LT(v, 5.0);
    }
}

TEST(Rng, NextDoubleMeanNearHalf)
{
    Rng rng(7);
    double acc = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        acc += rng.nextDouble();
    EXPECT_NEAR(acc / n, 0.5, 0.02);
}

TEST(Rng, GaussianMomentsSane)
{
    Rng rng(8);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.nextGaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.06);
}

TEST(Rng, BoolProbability)
{
    Rng rng(11);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(12);
    std::vector<int> v(100);
    for (int i = 0; i < 100; ++i)
        v[static_cast<std::size_t>(i)] = i;
    auto copy = v;
    rng.shuffle(v);
    EXPECT_NE(v, copy) << "shuffle of 100 elements left them in place";
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, copy);
}

TEST(Rng, ShuffleDeterministic)
{
    std::vector<int> a{1, 2, 3, 4, 5, 6, 7, 8};
    auto b = a;
    Rng r1(77), r2(77);
    r1.shuffle(a);
    r2.shuffle(b);
    EXPECT_EQ(a, b);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(13);
    Rng child = parent.split();
    // The child stream should not equal the parent's continuation.
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += parent.nextU64() == child.nextU64();
    EXPECT_LT(same, 3);
}

TEST(Rng, CoversFullRangeOfBuckets)
{
    Rng rng(14);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.nextBelow(16));
    EXPECT_EQ(seen.size(), 16u);
}

} // namespace
