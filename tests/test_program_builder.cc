/**
 * @file
 * Unit tests for the ProgramBuilder code generator.
 */

#include <gtest/gtest.h>

#include "vm/cpu.hh"
#include "workloads/program_builder.hh"

namespace {

using namespace mica;
using isa::Opcode;
using workloads::Label;
using workloads::ProgramBuilder;

TEST(ProgramBuilder, EmitsInstructions)
{
    ProgramBuilder pb("t");
    pb.li(5, 42);
    pb.halt();
    const auto prog = pb.build();
    ASSERT_EQ(prog.code.size(), 2u);
    EXPECT_EQ(prog.code[0].op, Opcode::Addi);
    EXPECT_EQ(prog.code[0].imm, 42);
    EXPECT_EQ(prog.name, "t");
}

TEST(ProgramBuilder, BackwardBranchFixup)
{
    ProgramBuilder pb("t");
    pb.li(5, 3);
    Label top = pb.newLabel();
    pb.bind(top);
    pb.alui(Opcode::Addi, 5, 5, -1);
    pb.branch(Opcode::Bne, 5, isa::kRegZero, top);
    pb.halt();
    const auto prog = pb.build();
    EXPECT_EQ(prog.code[2].imm, -8);

    vm::Cpu cpu(prog);
    EXPECT_EQ(cpu.run(100).reason, vm::StopReason::Halted);
    EXPECT_EQ(cpu.intReg(5), 0);
}

TEST(ProgramBuilder, ForwardJumpFixup)
{
    ProgramBuilder pb("t");
    Label skip = pb.newLabel();
    pb.jump(skip);
    pb.li(5, 99); // skipped
    pb.bind(skip);
    pb.li(6, 7);
    pb.halt();
    const auto prog = pb.build();
    vm::Cpu cpu(prog);
    (void)cpu.run(100);
    EXPECT_EQ(cpu.intReg(5), 0);
    EXPECT_EQ(cpu.intReg(6), 7);
}

TEST(ProgramBuilder, CallRetSequence)
{
    ProgramBuilder pb("t");
    Label fn = pb.newLabel();
    Label main = pb.newLabel();
    pb.jump(main);
    pb.bind(fn);
    pb.li(7, 5);
    pb.ret();
    pb.bind(main);
    pb.call(fn);
    pb.li(8, 6);
    pb.halt();
    vm::Cpu cpu(pb.build());
    EXPECT_EQ(cpu.run(100).reason, vm::StopReason::Halted);
    EXPECT_EQ(cpu.intReg(7), 5);
    EXPECT_EQ(cpu.intReg(8), 6);
}

TEST(ProgramBuilder, UnboundLabelThrowsAtBuild)
{
    ProgramBuilder pb("t");
    Label l = pb.newLabel();
    pb.jump(l);
    EXPECT_THROW((void)pb.build(), std::logic_error);
}

TEST(ProgramBuilder, DoubleBindThrows)
{
    ProgramBuilder pb("t");
    Label l = pb.newLabel();
    pb.bind(l);
    EXPECT_THROW(pb.bind(l), std::logic_error);
}

TEST(ProgramBuilder, DataAllocationAlignment)
{
    ProgramBuilder pb("t");
    const auto a = pb.allocData(3, 1);
    const auto b = pb.allocData(8, 8);
    EXPECT_EQ(a, isa::kDefaultDataBase);
    EXPECT_EQ(b % 8, 0u);
    EXPECT_GE(b, a + 3);
}

TEST(ProgramBuilder, AllocWordsContents)
{
    ProgramBuilder pb("t");
    const std::uint64_t words[] = {0x1122334455667788ULL, 42};
    const auto addr = pb.allocWords(words);
    pb.halt();
    vm::Cpu cpu(pb.build());
    EXPECT_EQ(cpu.memory().read(addr, 8), words[0]);
    EXPECT_EQ(cpu.memory().read(addr + 8, 8), 42u);
}

TEST(ProgramBuilder, AllocDoublesContents)
{
    ProgramBuilder pb("t");
    const double values[] = {2.5, -1.0};
    const auto addr = pb.allocDoubles(values);
    pb.halt();
    vm::Cpu cpu(pb.build());
    EXPECT_DOUBLE_EQ(cpu.memory().readDouble(addr), 2.5);
    EXPECT_DOUBLE_EQ(cpu.memory().readDouble(addr + 8), -1.0);
}

TEST(ProgramBuilder, ConsecutiveAllocationsAreContiguousWhenAligned)
{
    ProgramBuilder pb("t");
    const auto mark = pb.allocData(0, 16);
    const std::uint64_t words[] = {1, 2};
    const auto addr = pb.allocWords(words);
    EXPECT_EQ(mark, addr) << "allocWords must continue at the cursor";
}

TEST(ProgramBuilder, LabelTableHoldsCodeAddresses)
{
    ProgramBuilder pb("t");
    Label f1 = pb.newLabel();
    Label f2 = pb.newLabel();
    std::vector<Label> labels{f1, f2};
    const auto table = pb.allocLabelTable(labels);
    Label main = pb.newLabel();
    pb.jump(main);
    pb.bind(f1);
    pb.li(5, 1);
    pb.ret();
    pb.bind(f2);
    pb.li(6, 2);
    pb.ret();
    pb.bind(main);
    // Call both functions through the table.
    pb.load(Opcode::Ld, 9, isa::kRegZero,
            static_cast<std::int64_t>(table));
    pb.callIndirect(9);
    pb.load(Opcode::Ld, 9, isa::kRegZero,
            static_cast<std::int64_t>(table) + 8);
    pb.callIndirect(9);
    pb.halt();
    vm::Cpu cpu(pb.build());
    EXPECT_EQ(cpu.run(100).reason, vm::StopReason::Halted);
    EXPECT_EQ(cpu.intReg(5), 1);
    EXPECT_EQ(cpu.intReg(6), 2);
}

TEST(ProgramBuilder, PatchWord)
{
    ProgramBuilder pb("t");
    const auto slot = pb.allocData(8);
    pb.patchWord(slot, 1234);
    pb.halt();
    vm::Cpu cpu(pb.build());
    EXPECT_EQ(cpu.memory().read(slot, 8), 1234u);
}

TEST(ProgramBuilder, PatchWordOutsideSegmentThrows)
{
    ProgramBuilder pb("t");
    (void)pb.allocData(8);
    EXPECT_THROW(pb.patchWord(isa::kDefaultDataBase + 8, 1),
                 std::logic_error);
}

TEST(ProgramBuilder, BuildValidatesEncoding)
{
    ProgramBuilder pb("t");
    pb.li(5, isa::kImmMax + 1); // too large for the immediate field
    EXPECT_THROW((void)pb.build(), std::out_of_range);
}

} // namespace
