/**
 * @file
 * Tests for the benchmark catalog: structure (77 benchmarks, 7 suites,
 * paper-matching counts) and execution (every benchmark input builds and
 * runs trap-free; builds are deterministic).
 */

#include <gtest/gtest.h>

#include <set>

#include "vm/cpu.hh"
#include "workloads/workload.hh"

namespace {

using namespace mica;
using workloads::BenchmarkSpec;
using workloads::SuiteCatalog;

const SuiteCatalog &
catalog()
{
    static const SuiteCatalog instance;
    return instance;
}

TEST(SuiteCatalog, Has77Benchmarks)
{
    EXPECT_EQ(catalog().benchmarks().size(), 77u);
}

TEST(SuiteCatalog, SuiteSizesMatchPaperTable3)
{
    EXPECT_EQ(catalog().bySuite("BioPerf").size(), 10u);
    EXPECT_EQ(catalog().bySuite("BMW").size(), 5u);
    EXPECT_EQ(catalog().bySuite("SPECint2000").size(), 12u);
    EXPECT_EQ(catalog().bySuite("SPECfp2000").size(), 14u);
    EXPECT_EQ(catalog().bySuite("SPECint2006").size(), 12u);
    EXPECT_EQ(catalog().bySuite("SPECfp2006").size(), 17u);
    EXPECT_EQ(catalog().bySuite("MediaBenchII").size(), 7u);
}

TEST(SuiteCatalog, SevenSuiteGroups)
{
    EXPECT_EQ(SuiteCatalog::suiteNames().size(), 7u);
}

TEST(SuiteCatalog, IdsAreUnique)
{
    std::set<std::string> ids;
    for (const auto &b : catalog().benchmarks())
        EXPECT_TRUE(ids.insert(b.id()).second) << "duplicate " << b.id();
}

TEST(SuiteCatalog, SharedNamesAcrossSuitesAreDistinctIds)
{
    // The paper has hmmer in both BioPerf and SPECint2006, and bzip2/gcc/
    // mcf in both CPU2000 and CPU2006.
    EXPECT_NE(catalog().find("BioPerf/hmmer"), nullptr);
    EXPECT_NE(catalog().find("SPECint2006/hmmer"), nullptr);
    EXPECT_NE(catalog().find("SPECint2000/mcf"), nullptr);
    EXPECT_NE(catalog().find("SPECint2006/mcf"), nullptr);
}

TEST(SuiteCatalog, FindUnknownReturnsNull)
{
    EXPECT_EQ(catalog().find("SPECint2000/quake3"), nullptr);
}

TEST(SuiteCatalog, AddDuplicateThrows)
{
    SuiteCatalog cat;
    BenchmarkSpec dup = cat.benchmarks().front();
    EXPECT_THROW(cat.add(dup), std::logic_error);
}

TEST(SuiteCatalog, AddUnknownSuiteThrows)
{
    SuiteCatalog cat;
    BenchmarkSpec spec = cat.benchmarks().front();
    spec.name = "fresh";
    spec.suite = "SPECint2042";
    EXPECT_THROW(cat.add(spec), std::logic_error);
}

TEST(SuiteCatalog, EveryBenchmarkHasPhasesAndBudget)
{
    for (const auto &b : catalog().benchmarks()) {
        EXPECT_GE(b.num_inputs, 1u) << b.id();
        EXPECT_GE(b.total_intervals, 1u) << b.id();
        EXPECT_FALSE(b.phases(0).empty()) << b.id();
    }
}

TEST(SuiteCatalog, IntervalsForInputSplitsBudget)
{
    for (const auto &b : catalog().benchmarks()) {
        std::uint32_t total = 0;
        for (std::uint32_t in = 0; in < b.num_inputs; ++in)
            total += b.intervalsForInput(in);
        EXPECT_GE(total, b.total_intervals) << b.id();
        EXPECT_LE(total, b.total_intervals + b.num_inputs) << b.id();
    }
}

TEST(SuiteCatalog, BadInputIndexThrows)
{
    const auto &b = catalog().benchmarks().front();
    EXPECT_THROW((void)b.build(b.num_inputs), std::out_of_range);
}

TEST(SuiteCatalog, BuildIsDeterministic)
{
    const auto *b = catalog().find("SPECint2006/astar");
    ASSERT_NE(b, nullptr);
    const auto p1 = b->build(0);
    const auto p2 = b->build(0);
    ASSERT_EQ(p1.code.size(), p2.code.size());
    for (std::size_t i = 0; i < p1.code.size(); ++i)
        ASSERT_EQ(p1.code[i], p2.code[i]);
    EXPECT_EQ(p1.data, p2.data);
}

TEST(SuiteCatalog, InputsProduceDifferentPrograms)
{
    const auto *b = catalog().find("SPECint2000/gcc");
    ASSERT_NE(b, nullptr);
    ASSERT_GE(b->num_inputs, 2u);
    const auto p0 = b->build(0);
    const auto p1 = b->build(1);
    EXPECT_TRUE(p0.code.size() != p1.code.size() || p0.data != p1.data);
}

TEST(ComposeProgram, EmptyPhasesThrows)
{
    EXPECT_THROW(
        (void)workloads::composeProgram("x", 1, {}),
        std::invalid_argument);
}

/** Every benchmark input runs 40K instructions without trapping. */
struct RunCase
{
    std::string id;
    std::uint32_t input;
};

class BenchmarkRunTest : public ::testing::TestWithParam<RunCase>
{
};

TEST_P(BenchmarkRunTest, RunsTrapFree)
{
    const auto *bench = catalog().find(GetParam().id);
    ASSERT_NE(bench, nullptr);
    vm::Cpu cpu(bench->build(GetParam().input));
    const auto res = cpu.run(40000);
    EXPECT_EQ(res.reason, vm::StopReason::InstructionLimit)
        << "benchmark " << GetParam().id << " input " << GetParam().input
        << " stopped after " << res.executed << " instructions";
    EXPECT_EQ(res.executed, 40000u);
}

std::vector<RunCase>
allRunCases()
{
    std::vector<RunCase> cases;
    for (const auto &b : catalog().benchmarks())
        for (std::uint32_t in = 0; in < b.num_inputs; ++in)
            cases.push_back({b.id(), in});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkRunTest, ::testing::ValuesIn(allRunCases()),
    [](const auto &info) {
        std::string name = info.param.id + "_in" +
                           std::to_string(info.param.input);
        for (char &c : name)
            if (c == '/' || c == '-' || c == '.')
                c = '_';
        return name;
    });

} // namespace
