/**
 * @file
 * Tests for the trace-sink plumbing: TeeSink fan-out and the
 * TraceLogger's formatted output.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "asm/assembler.hh"
#include "mica/profiler.hh"
#include "vm/cpu.hh"
#include "vm/timing.hh"
#include "vm/trace_logger.hh"

namespace {

using namespace mica;

struct CountingSink : vm::TraceSink
{
    int count = 0;
    void onInstruction(const vm::DynInstr &) override { ++count; }
};

TEST(TeeSink, FansOutToAllSinks)
{
    const auto prog = assembler::assemble("loop: addi x5, x5, 1\n"
                                          "jal x0, loop");
    vm::Cpu cpu(prog);
    CountingSink a, b, c;
    vm::TeeSink tee;
    tee.attach(&a);
    tee.attach(&b);
    tee.attach(&c);
    (void)cpu.run(100, &tee);
    EXPECT_EQ(a.count, 100);
    EXPECT_EQ(b.count, 100);
    EXPECT_EQ(c.count, 100);
}

TEST(TeeSink, ProfilerAndTimingCompose)
{
    const auto prog = assembler::assemble(R"(
        .data
        buf: .zero 1024
        .text
    loop:
        ld x5, buf(x0)
        addi x6, x6, 1
        jal x0, loop
    )");
    vm::Cpu cpu(prog);
    profiler::MicaProfiler profiler(500);
    vm::TimingModel timing;
    vm::TeeSink tee;
    tee.attach(&profiler);
    tee.attach(&timing);
    (void)cpu.run(1000, &tee);
    EXPECT_EQ(profiler.intervals().size(), 2u);
    EXPECT_EQ(timing.stats().instructions, 1000u);
}

TEST(TraceLogger, FormatsInstructionLines)
{
    const auto prog = assembler::assemble(R"(
        .data
        buf: .zero 64
        .text
        addi x5, x0, 7
        sd x5, buf(x0)
        beq x5, x0, skip
        addi x6, x0, 1
    skip:
        halt
    )");
    vm::Cpu cpu(prog);
    std::ostringstream log;
    vm::TraceLogger logger(log);
    (void)cpu.run(100, &logger);
    const std::string text = log.str();

    EXPECT_NE(text.find("addi x5, x0, 7"), std::string::npos);
    EXPECT_NE(text.find("sd x5,"), std::string::npos);
    EXPECT_NE(text.find("W 0x"), std::string::npos) << "store address";
    EXPECT_NE(text.find("(8B)"), std::string::npos);
    EXPECT_NE(text.find("[not taken]"), std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);
    EXPECT_EQ(logger.seen(), 5u);
}

TEST(TraceLogger, RespectsLineLimit)
{
    const auto prog = assembler::assemble("loop: addi x5, x5, 1\n"
                                          "jal x0, loop");
    vm::Cpu cpu(prog);
    std::ostringstream log;
    vm::TraceLogger logger(log, 10);
    (void)cpu.run(1000, &logger);
    EXPECT_EQ(logger.seen(), 1000u);
    int lines = 0;
    for (char c : log.str())
        lines += c == '\n';
    EXPECT_EQ(lines, 10);
}

TEST(TraceLogger, MarksTakenBranches)
{
    const auto prog = assembler::assemble(R"(
        addi x5, x0, 1
        bne x5, x0, target
        nop
    target:
        halt
    )");
    vm::Cpu cpu(prog);
    std::ostringstream log;
    vm::TraceLogger logger(log);
    (void)cpu.run(100, &logger);
    EXPECT_NE(log.str().find("[taken]"), std::string::npos);
    EXPECT_EQ(log.str().find("nop"), std::string::npos)
        << "skipped instruction must not appear";
}

} // namespace
