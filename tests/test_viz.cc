/**
 * @file
 * Tests for the visualization layer: SVG structure, kiviat scaling, ASCII
 * charts and CSV emission.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "viz/charts.hh"
#include "viz/figure_charts.hh"
#include "viz/kiviat.hh"
#include "viz/svg.hh"

namespace {

using namespace mica::viz;

int
countOccurrences(const std::string &haystack, const std::string &needle)
{
    int count = 0;
    std::size_t pos = 0;
    while ((pos = haystack.find(needle, pos)) != std::string::npos) {
        ++count;
        pos += needle.size();
    }
    return count;
}

TEST(Svg, DocumentStructure)
{
    SvgDocument doc(100, 50);
    doc.line({0, 0}, {10, 10}, "#000000");
    doc.circle({5, 5}, 2, "red");
    const std::string s = doc.str();
    EXPECT_NE(s.find("<svg"), std::string::npos);
    EXPECT_NE(s.find("</svg>"), std::string::npos);
    EXPECT_NE(s.find("width=\"100.00\""), std::string::npos);
    EXPECT_EQ(countOccurrences(s, "<line"), 1);
    EXPECT_EQ(countOccurrences(s, "<circle"), 1);
}

TEST(Svg, EscapesText)
{
    SvgDocument doc(10, 10);
    doc.text({0, 0}, "a<b & \"c\"", 10);
    const std::string s = doc.str();
    EXPECT_NE(s.find("a&lt;b &amp; &quot;c&quot;"), std::string::npos);
    EXPECT_EQ(s.find("a<b"), std::string::npos);
}

TEST(Svg, PolygonPoints)
{
    SvgDocument doc(10, 10);
    doc.polygon({{0, 0}, {5, 0}, {5, 5}}, "none", "#123456");
    EXPECT_NE(doc.str().find("5.00,5.00"), std::string::npos);
}

TEST(Svg, WedgeEmitsPath)
{
    SvgDocument doc(10, 10);
    doc.wedge({5, 5}, 4, 0.0, 2.0, "#ff0000");
    EXPECT_NE(doc.str().find("<path"), std::string::npos);
}

TEST(Svg, WritesFile)
{
    const std::string path = "/tmp/micaphase_test_svg.svg";
    SvgDocument doc(10, 10);
    doc.rect({0, 0}, 5, 5, "#ffffff");
    doc.writeFile(path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, doc.str());
    std::remove(path.c_str());
}

std::vector<AxisStats>
twoAxes()
{
    return {
        {"a", 0.0, 0.2, 0.5, 0.8, 1.0},
        {"b", 10.0, 12.0, 15.0, 18.0, 20.0},
    };
}

TEST(Kiviat, AxisRadiusScalesAndClamps)
{
    const AxisStats axis{"x", 0.0, 0.0, 0.5, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(axisRadius(axis, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(axisRadius(axis, 1.0), 0.5);
    EXPECT_DOUBLE_EQ(axisRadius(axis, 2.0), 1.0);
    EXPECT_DOUBLE_EQ(axisRadius(axis, -5.0), 0.0);
    EXPECT_DOUBLE_EQ(axisRadius(axis, 9.0), 1.0);
}

TEST(Kiviat, DegenerateAxisMidpoint)
{
    const AxisStats axis{"x", 3.0, 3.0, 3.0, 3.0, 3.0};
    EXPECT_DOUBLE_EQ(axisRadius(axis, 3.0), 0.5);
}

TEST(Kiviat, PanelRenders)
{
    KiviatPanel panel;
    panel.title = "weight: 4.87%";
    panel.values = {0.7, 14.0};
    panel.slices = {{"fasta", 1.0}};
    panel.caption_lines = {"BioPerf/fasta: 23.56%"};
    const auto doc = renderKiviatPanel(panel, twoAxes(), {});
    const std::string s = doc.str();
    EXPECT_NE(s.find("weight: 4.87%"), std::string::npos);
    EXPECT_NE(s.find("23.56%"), std::string::npos);
    EXPECT_GE(countOccurrences(s, "<polygon"), 5) << "rings + shape";
    EXPECT_GE(countOccurrences(s, "<path"), 1) << "pie slice";
}

TEST(Kiviat, ValueCountMismatchThrows)
{
    KiviatPanel panel;
    panel.values = {0.5};
    EXPECT_THROW((void)renderKiviatPanel(panel, twoAxes(), {}),
                 std::invalid_argument);
}

TEST(Kiviat, GridLaysOutAllPanels)
{
    KiviatPanel panel;
    panel.title = "w";
    panel.values = {0.5, 12.0};
    panel.slices = {{"x", 0.5}, {"y", 0.5}};
    std::vector<KiviatPanel> panels(7, panel);
    KiviatOptions opts;
    opts.columns = 3;
    const auto doc = renderKiviatGrid("grid title", panels, twoAxes(),
                                      opts);
    const std::string s = doc.str();
    EXPECT_NE(s.find("grid title"), std::string::npos);
    EXPECT_GE(countOccurrences(s, "<path"), 14) << "2 slices x 7 panels";
}

TEST(Kiviat, AsciiContainsAxesAndSlices)
{
    KiviatPanel panel;
    panel.title = "weight: 1.00%";
    panel.values = {0.9, 11.0};
    panel.slices = {{"SPECint2006/astar", 0.75}};
    const std::string s = renderAsciiKiviat(panel, twoAxes());
    EXPECT_NE(s.find("weight: 1.00%"), std::string::npos);
    EXPECT_NE(s.find("a"), std::string::npos);
    EXPECT_NE(s.find("astar"), std::string::npos);
    EXPECT_NE(s.find("75.0%"), std::string::npos);
}

TEST(Charts, BarChartScalesToWidest)
{
    const std::string s = asciiBarChart(
        "t", {{"one", 1.0}, {"two", 2.0}}, 10);
    EXPECT_NE(s.find("one"), std::string::npos);
    // The widest bar fills the full width.
    EXPECT_NE(s.find("##########"), std::string::npos);
}

TEST(Charts, BarChartPercentMode)
{
    const std::string s =
        asciiBarChart("t", {{"x", 0.652}}, 10, true);
    EXPECT_NE(s.find("65.2%"), std::string::npos);
}

TEST(Charts, BarChartHandlesAllZero)
{
    const std::string s = asciiBarChart("t", {{"x", 0.0}}, 10);
    EXPECT_NE(s.find("x"), std::string::npos);
}

TEST(Charts, CurvesListSeriesNames)
{
    Series s1{"SPECint2006", {0.2, 0.5, 0.8, 1.0}};
    Series s2{"BMW", {0.6, 0.9, 1.0, 1.0}};
    const std::string s = asciiCurves("fig5", {s1, s2});
    EXPECT_NE(s.find("SPECint2006"), std::string::npos);
    EXPECT_NE(s.find("BMW"), std::string::npos);
    EXPECT_NE(s.find("fig5"), std::string::npos);
}

TEST(Charts, CurvesEmptyIsSafe)
{
    EXPECT_NO_THROW((void)asciiCurves("t", {}));
    EXPECT_NO_THROW((void)asciiCurves("t", {{"s", {}}}));
}

TEST(Charts, CsvWriter)
{
    const std::string path = "/tmp/micaphase_test.csv";
    writeCsv(path, {"a", "b"}, {{"1", "2"}, {"3", "4"}});
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2");
    std::getline(in, line);
    EXPECT_EQ(line, "3,4");
    std::remove(path.c_str());
}

TEST(FigureCharts, BarChartSvgStructure)
{
    const auto doc = renderBarChartSvg(
        "fig4", {{"SPECint2006", 80.0}, {"BMW", 39.0}}, {});
    const std::string s = doc.str();
    EXPECT_NE(s.find("fig4"), std::string::npos);
    EXPECT_NE(s.find("SPECint2006"), std::string::npos);
    EXPECT_NE(s.find("BMW"), std::string::npos);
    EXPECT_GE(countOccurrences(s, "<rect"), 3) << "background + 2 bars";
}

TEST(FigureCharts, BarChartSvgPercentFormatting)
{
    ChartOptions opts;
    opts.percent = true;
    const auto doc = renderBarChartSvg("u", {{"BioPerf", 0.831}}, opts);
    EXPECT_NE(doc.str().find("83.1%"), std::string::npos);
}

TEST(FigureCharts, BarChartSvgHandlesEmpty)
{
    EXPECT_NO_THROW((void)renderBarChartSvg("empty", {}, {}));
}

TEST(FigureCharts, LineChartSvgStructure)
{
    Series a{"SPECfp2006", {0.1, 0.4, 0.8, 1.0}};
    Series b{"BMW", {0.5, 0.9, 1.0, 1.0}};
    const auto doc = renderLineChartSvg("fig5", {a, b}, {});
    const std::string s = doc.str();
    EXPECT_EQ(countOccurrences(s, "<polyline"), 2);
    EXPECT_NE(s.find("SPECfp2006"), std::string::npos);
    EXPECT_NE(s.find("clusters (1..4)"), std::string::npos);
}

TEST(FigureCharts, LineChartSvgHandlesDegenerateInput)
{
    EXPECT_NO_THROW((void)renderLineChartSvg("t", {}, {}));
    EXPECT_NO_THROW((void)renderLineChartSvg("t", {{"one", {0.5}}}, {}));
    EXPECT_NO_THROW(
        (void)renderLineChartSvg("t", {{"zeros", {0.0, 0.0}}}, {}));
}

TEST(Charts, CsvWriterBadPathThrows)
{
    EXPECT_THROW(writeCsv("/nonexistent_dir_xyz/f.csv", {"a"}, {}),
                 std::runtime_error);
}

} // namespace
