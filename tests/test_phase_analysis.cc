/**
 * @file
 * Tests for the phase analysis: PCA + clustering wiring, cluster
 * summaries, kind classification, and the prominent-phase matrix. Uses
 * hand-built data sets with known structure.
 */

#include <gtest/gtest.h>

#include "core/phase_analysis.hh"
#include "stats/rng.hh"

namespace {

using namespace mica;
using core::CharacterizationResult;
using core::ClusterKind;
using core::ExperimentConfig;
using core::SampledDataset;

/**
 * Build a synthetic sampled data set with three well-separated behaviour
 * groups:
 *   group 0: benchmark 0 only            (expect benchmark-specific)
 *   group 1: benchmarks 1 and 2, suite A (expect suite-specific)
 *   group 2: benchmarks 3 (suite A) and 4 (suite B) (expect mixed)
 */
struct Fixture
{
    CharacterizationResult chars;
    SampledDataset sampled;

    Fixture()
    {
        const std::vector<std::string> suites = {"A", "A", "A", "A", "B"};
        for (std::size_t b = 0; b < 5; ++b) {
            chars.benchmark_ids.push_back(suites[b] + "/b" +
                                          std::to_string(b));
            chars.benchmark_names.push_back("b" + std::to_string(b));
            chars.benchmark_suites.push_back(suites[b]);
        }

        stats::Rng rng(5);
        auto add_rows = [&](std::uint32_t bench, double cx, double cy,
                            int rows) {
            for (int i = 0; i < rows; ++i) {
                std::vector<double> row(metrics::kNumCharacteristics, 0.0);
                row[0] = cx + 0.01 * rng.nextGaussian();
                row[1] = cy + 0.01 * rng.nextGaussian();
                // A couple of extra informative dimensions so PCA keeps
                // more than one component.
                row[2] = cx * 0.5 + 0.01 * rng.nextGaussian();
                row[3] = cy * 0.25 + 0.01 * rng.nextGaussian();
                sampled.data.appendRow(row);
                sampled.benchmark_of_row.push_back(bench);
                sampled.source_interval.push_back(0);
            }
        };
        add_rows(0, 0.0, 0.0, 30);  // group 0 (heaviest)
        add_rows(1, 10.0, 0.0, 10); // group 1
        add_rows(2, 10.0, 0.0, 10);
        add_rows(3, 0.0, 10.0, 10); // group 2
        add_rows(4, 0.0, 10.0, 10);
    }

    ExperimentConfig
    config() const
    {
        ExperimentConfig cfg;
        cfg.kmeans_k = 3;
        cfg.kmeans_restarts = 4;
        cfg.num_prominent = 3;
        cfg.seed = 11;
        return cfg;
    }
};

TEST(PhaseAnalysis, WeightsSumToOne)
{
    Fixture fix;
    const auto analysis =
        core::analyzePhases(fix.sampled, fix.chars, fix.config());
    double total = 0.0;
    for (const auto &c : analysis.clusters)
        total += c.weight;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PhaseAnalysis, ClustersSortedByWeight)
{
    Fixture fix;
    const auto analysis =
        core::analyzePhases(fix.sampled, fix.chars, fix.config());
    for (std::size_t i = 0; i + 1 < analysis.clusters.size(); ++i)
        EXPECT_GE(analysis.clusters[i].weight,
                  analysis.clusters[i + 1].weight);
}

TEST(PhaseAnalysis, KindClassification)
{
    Fixture fix;
    const auto analysis =
        core::analyzePhases(fix.sampled, fix.chars, fix.config());
    ASSERT_EQ(analysis.clusters.size(), 3u);

    int benchmark_specific = 0, suite_specific = 0, mixed = 0;
    for (const auto &c : analysis.clusters) {
        switch (c.kind) {
          case ClusterKind::BenchmarkSpecific: ++benchmark_specific; break;
          case ClusterKind::SuiteSpecific: ++suite_specific; break;
          case ClusterKind::Mixed: ++mixed; break;
        }
    }
    EXPECT_EQ(benchmark_specific, 1);
    EXPECT_EQ(suite_specific, 1);
    EXPECT_EQ(mixed, 1);
}

TEST(PhaseAnalysis, HeaviestClusterIsTheBigGroup)
{
    Fixture fix;
    const auto analysis =
        core::analyzePhases(fix.sampled, fix.chars, fix.config());
    const auto &top = analysis.clusters[0];
    EXPECT_NEAR(top.weight, 30.0 / 70.0, 1e-9);
    EXPECT_EQ(top.kind, ClusterKind::BenchmarkSpecific);
    ASSERT_EQ(top.benchmark_counts.size(), 1u);
    EXPECT_EQ(top.benchmark_counts[0].first, 0u);
}

TEST(PhaseAnalysis, RepresentativeBelongsToCluster)
{
    Fixture fix;
    const auto analysis =
        core::analyzePhases(fix.sampled, fix.chars, fix.config());
    for (const auto &c : analysis.clusters)
        EXPECT_EQ(analysis.clustering.assignment[c.representative_row],
                  c.cluster);
}

TEST(PhaseAnalysis, BenchmarkFraction)
{
    Fixture fix;
    const auto analysis =
        core::analyzePhases(fix.sampled, fix.chars, fix.config());
    const auto &top = analysis.clusters[0];
    EXPECT_DOUBLE_EQ(top.benchmarkFraction(0, 30), 1.0);
    EXPECT_DOUBLE_EQ(top.benchmarkFraction(1, 10), 0.0);
    EXPECT_EQ(top.benchmarkFraction(0, 0), 0.0);
}

TEST(PhaseAnalysis, ProminentCoverage)
{
    Fixture fix;
    auto cfg = fix.config();
    cfg.num_prominent = 2;
    const auto analysis = core::analyzePhases(fix.sampled, fix.chars, cfg);
    EXPECT_EQ(analysis.num_prominent, 2u);
    const double expected = analysis.clusters[0].weight +
                            analysis.clusters[1].weight;
    EXPECT_NEAR(analysis.prominentCoverage(), expected, 1e-12);
    EXPECT_LT(analysis.prominentCoverage(), 1.0);
}

TEST(PhaseAnalysis, ProminentPhaseMatrixShape)
{
    Fixture fix;
    const auto analysis =
        core::analyzePhases(fix.sampled, fix.chars, fix.config());
    const auto matrix =
        core::prominentPhaseMatrix(fix.sampled, analysis);
    EXPECT_EQ(matrix.rows(), analysis.num_prominent);
    EXPECT_EQ(matrix.cols(), metrics::kNumCharacteristics);
    // First row is the representative of the heaviest cluster.
    const auto rep = fix.sampled.data.row(
        analysis.clusters[0].representative_row);
    for (std::size_t c = 0; c < matrix.cols(); ++c)
        EXPECT_EQ(matrix(0, c), rep[c]);
}

TEST(PhaseAnalysis, PcaStatsPopulated)
{
    Fixture fix;
    const auto analysis =
        core::analyzePhases(fix.sampled, fix.chars, fix.config());
    EXPECT_GE(analysis.pca_components, 1u);
    EXPECT_GT(analysis.pca_explained, 0.5);
    EXPECT_LE(analysis.pca_explained, 1.0 + 1e-12);
    EXPECT_EQ(analysis.reduced.rows(), fix.sampled.data.rows());
}

TEST(PhaseAnalysis, EmptyDataThrows)
{
    Fixture fix;
    SampledDataset empty;
    EXPECT_THROW(
        (void)core::analyzePhases(empty, fix.chars, fix.config()),
        std::invalid_argument);
}

TEST(PhaseAnalysis, KindNames)
{
    EXPECT_EQ(core::clusterKindName(ClusterKind::BenchmarkSpecific),
              "benchmark-specific");
    EXPECT_EQ(core::clusterKindName(ClusterKind::SuiteSpecific),
              "suite-specific");
    EXPECT_EQ(core::clusterKindName(ClusterKind::Mixed), "mixed");
}

TEST(PhaseAnalysis, DeterministicForSeed)
{
    Fixture fix;
    const auto a = core::analyzePhases(fix.sampled, fix.chars,
                                       fix.config());
    const auto b = core::analyzePhases(fix.sampled, fix.chars,
                                       fix.config());
    EXPECT_EQ(a.clustering.assignment, b.clustering.assignment);
}

} // namespace
