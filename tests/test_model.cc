/**
 * @file
 * Tests for the frozen phase-model store (src/model): binary format
 * round-trips and corruption rejection, the golden cross-platform layout
 * fixture, the incremental query API, and the keystone guarantee —
 * projecting the training catalog through a saved-then-reloaded model is
 * bit-identical to the in-memory analyzePhases results at threads 1/2/4.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/model_export.hh"
#include "core/pipeline.hh"
#include "model/model_view.hh"
#include "model/phase_model.hh"

namespace {

using namespace mica;
using model::ClusterKind;
using model::ModelError;
using model::PhaseModel;

/**
 * A small fully hand-specified model. This is also the content of the
 * golden fixture tests/data/golden_phase_model_v1.bin — change either and
 * the layout-guard tests below will tell you.
 */
PhaseModel
tinyModel()
{
    PhaseModel m;
    m.analysis_key = 0x0123456789abcdefULL;
    m.interval_instructions = 2000;
    m.samples_per_benchmark = 4;
    m.interval_scale = 0.5;
    m.pca_min_stddev = 1.0;
    m.seed = 42;
    m.training_rows = 6;
    m.benchmark_ids = {"SuiteA/one", "SuiteB/two"};
    m.benchmark_suites = {"SuiteA", "SuiteB"};
    m.suites = {"SuiteA", "SuiteB"};
    m.normalize_input = true;
    m.norm_mean = {0.5, -1.25, 3.0};
    m.norm_stddev = {1.5, 2.0, 0.0}; // third column is degenerate
    m.pca_explained = 0.875;
    m.eigenvalues = {2.5, 0.5, 0.125};
    m.loadings = stats::Matrix::fromRows(
        {{0.6, -0.8}, {0.8, 0.6}, {0.0, 0.0}});
    m.rescale_sd = {1.25, 0.75};
    m.centers = stats::Matrix::fromRows({{1.0, 0.0}, {-1.0, 0.5}});
    m.cluster_sizes = {4, 2};
    m.cluster_kinds = {ClusterKind::Mixed, ClusterKind::BenchmarkSpecific};
    m.suite_rows = {2, 2, 2, 0}; // cluster 0 mixed, cluster 1 SuiteA only
    m.prominent = {{0, 4.0 / 6.0, 1}};
    m.prominent_raw = stats::Matrix::fromRows({{0.1, 0.2, 0.3}});
    m.key_characteristics = {0, 2};
    m.ga_fitness = 0.75;
    return m;
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
writeFile(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

void
expectModelsEqual(const PhaseModel &a, const PhaseModel &b)
{
    EXPECT_EQ(a.analysis_key, b.analysis_key);
    EXPECT_EQ(a.interval_instructions, b.interval_instructions);
    EXPECT_EQ(a.samples_per_benchmark, b.samples_per_benchmark);
    EXPECT_EQ(a.interval_scale, b.interval_scale);
    EXPECT_EQ(a.pca_min_stddev, b.pca_min_stddev);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.training_rows, b.training_rows);
    EXPECT_EQ(a.benchmark_ids, b.benchmark_ids);
    EXPECT_EQ(a.benchmark_suites, b.benchmark_suites);
    EXPECT_EQ(a.suites, b.suites);
    EXPECT_EQ(a.normalize_input, b.normalize_input);
    EXPECT_EQ(a.norm_mean, b.norm_mean);
    EXPECT_EQ(a.norm_stddev, b.norm_stddev);
    EXPECT_EQ(a.pca_explained, b.pca_explained);
    EXPECT_EQ(a.eigenvalues, b.eigenvalues);
    EXPECT_EQ(a.loadings.maxAbsDiff(b.loadings), 0.0);
    EXPECT_EQ(a.rescale_sd, b.rescale_sd);
    EXPECT_EQ(a.centers.maxAbsDiff(b.centers), 0.0);
    EXPECT_EQ(a.cluster_sizes, b.cluster_sizes);
    EXPECT_EQ(a.cluster_kinds, b.cluster_kinds);
    EXPECT_EQ(a.suite_rows, b.suite_rows);
    ASSERT_EQ(a.prominent.size(), b.prominent.size());
    for (std::size_t i = 0; i < a.prominent.size(); ++i) {
        EXPECT_EQ(a.prominent[i].cluster, b.prominent[i].cluster);
        EXPECT_EQ(a.prominent[i].weight, b.prominent[i].weight);
        EXPECT_EQ(a.prominent[i].representative_row,
                  b.prominent[i].representative_row);
    }
    EXPECT_EQ(a.prominent_raw.maxAbsDiff(b.prominent_raw), 0.0);
    EXPECT_EQ(a.key_characteristics, b.key_characteristics);
    EXPECT_EQ(a.ga_fitness, b.ga_fitness);
}

// ---------------------------------------------------------------- format

TEST(PhaseModelFormat, SaveLoadRoundTripIsExact)
{
    const std::string path = "/tmp/micaphase_model_roundtrip.bin";
    const PhaseModel original = tinyModel();
    original.save(path);
    const PhaseModel loaded = PhaseModel::load(path);
    expectModelsEqual(original, loaded);
    std::remove(path.c_str());
}

TEST(PhaseModelFormat, ResaveIsByteIdentical)
{
    // save(load(save(m))) must reproduce the file byte for byte: the
    // serialization has exactly one encoding per model.
    const std::string a = "/tmp/micaphase_model_a.bin";
    const std::string b = "/tmp/micaphase_model_b.bin";
    tinyModel().save(a);
    PhaseModel::load(a).save(b);
    EXPECT_EQ(readFile(a), readFile(b));
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(PhaseModelFormat, SaveIsAtomic)
{
    const std::string path = "/tmp/micaphase_model_atomic.bin";
    tinyModel().save(path);
    EXPECT_TRUE(std::filesystem::exists(path));
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
    std::remove(path.c_str());
}

TEST(PhaseModelFormat, LoadRejectsMissingFile)
{
    EXPECT_THROW((void)PhaseModel::load("/tmp/micaphase_no_such.bin"),
                 ModelError);
}

TEST(PhaseModelFormat, LoadRejectsTruncationAtEveryBoundary)
{
    const std::string path = "/tmp/micaphase_model_trunc_src.bin";
    const std::string cut = "/tmp/micaphase_model_trunc.bin";
    tinyModel().save(path);
    const auto bytes = readFile(path);
    ASSERT_GT(bytes.size(), 64u);

    // Empty file, torn magic, torn header, torn section table, torn
    // payload, and one-byte-short: all must raise, never partial-load.
    for (const std::size_t size :
         {std::size_t{0}, std::size_t{4}, std::size_t{12},
          std::size_t{40}, bytes.size() / 2, bytes.size() - 1}) {
        writeFile(cut, {bytes.begin(), bytes.begin() + size});
        EXPECT_THROW((void)PhaseModel::load(cut), ModelError)
            << "truncated to " << size << " bytes";
    }
    std::remove(path.c_str());
    std::remove(cut.c_str());
}

TEST(PhaseModelFormat, LoadRejectsBitFlipsAnywhereInPayload)
{
    const std::string path = "/tmp/micaphase_model_flip_src.bin";
    const std::string bad = "/tmp/micaphase_model_flip.bin";
    tinyModel().save(path);
    const auto bytes = readFile(path);

    // Flip one bit in a spread of payload positions; the per-section CRC
    // must catch every one of them (a flip in the header/table is caught
    // by magic/bounds/CRC-mismatch instead).
    const std::size_t payload_start = 16 + 7 * 32; // header + table
    ASSERT_LT(payload_start, bytes.size());
    for (std::size_t pos = payload_start; pos < bytes.size();
         pos += 97) {
        auto flipped = bytes;
        flipped[pos] ^= 0x10;
        writeFile(bad, flipped);
        EXPECT_THROW((void)PhaseModel::load(bad), ModelError)
            << "bit flip at byte " << pos << " not detected";
    }
    std::remove(path.c_str());
    std::remove(bad.c_str());
}

std::uint32_t
testCrc32(const std::uint8_t *data, std::size_t size)
{
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i) {
        crc ^= data[i];
        for (int k = 0; k < 8; ++k)
            crc = (crc & 1u) ? 0xEDB88320u ^ (crc >> 1) : crc >> 1;
    }
    return crc ^ 0xFFFFFFFFu;
}

std::uint32_t
getU32(const std::vector<std::uint8_t> &b, std::size_t pos)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(b[pos + i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::vector<std::uint8_t> &b, std::size_t pos)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(b[pos + i]) << (8 * i);
    return v;
}

void
putU32(std::vector<std::uint8_t> &b, std::size_t pos, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        b[pos + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
putU64(std::vector<std::uint8_t> &b, std::size_t pos, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        b[pos + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

TEST(PhaseModelFormat, LoadRejectsOverflowingMatrixDims)
{
    // A crafted file whose matrix header claims cols near 2^61 makes the
    // naive `8 * cols` section guard wrap (2^61 divides by zero, 2^61+1
    // wraps the bound to 8 and then rows*cols wraps the allocation). Both
    // must be rejected by the overflow-safe guard, with a valid CRC so the
    // checksum layer cannot mask the bug.
    const std::string path = "/tmp/micaphase_model_overflow.bin";
    tinyModel().save(path);
    const auto orig = readFile(path);

    // Find the PCA section (id 4) table entry: header is 16 bytes, each
    // entry 32 (id, reserved, offset, size, crc, reserved).
    const std::size_t header = 16, entry_size = 32;
    const std::uint32_t nsec = getU32(orig, 12);
    std::size_t entry = 0;
    for (std::uint32_t i = 0; i < nsec; ++i)
        if (getU32(orig, header + i * entry_size) == 4)
            entry = header + i * entry_size;
    ASSERT_NE(entry, 0u) << "PCA section not found";
    const auto off = static_cast<std::size_t>(getU64(orig, entry + 8));
    const auto sec_size = static_cast<std::size_t>(getU64(orig, entry + 16));

    // PCA payload: pca_explained (8) + eigenvalue count (8) + 3
    // eigenvalues (24) put the 3x2 loadings dims at +40 (rows), +48 (cols).
    ASSERT_EQ(getU64(orig, off + 40), 3u);
    ASSERT_EQ(getU64(orig, off + 48), 2u);

    for (const std::uint64_t cols :
         {std::uint64_t{1} << 61, (std::uint64_t{1} << 61) + 1}) {
        auto bytes = orig;
        putU64(bytes, off + 40, 1);
        putU64(bytes, off + 48, cols);
        putU32(bytes, entry + 24, testCrc32(bytes.data() + off, sec_size));
        writeFile(path, bytes);
        EXPECT_THROW((void)PhaseModel::load(path), ModelError)
            << "cols = " << cols;
    }
    std::remove(path.c_str());
}

TEST(PhaseModelFormat, LoadRejectsOverlappingSections)
{
    // Regression: the loader used to verify each section's bounds and CRC
    // in isolation and never checked sections against each other, so a
    // table whose entries shared bytes was accepted. Craft such tables
    // with VALID checksums — the CRC layer must not be what rejects them.
    tinyModel().save("/tmp/micaphase_model_overlap.bin");
    const auto orig = readFile("/tmp/micaphase_model_overlap.bin");
    std::remove("/tmp/micaphase_model_overlap.bin");
    const std::size_t header = 16, entry_size = 32;
    const std::uint32_t nsec = getU32(orig, 12);
    ASSERT_EQ(nsec, 7u);

    auto entryFor = [&](std::uint32_t id) {
        for (std::uint32_t i = 0; i < nsec; ++i)
            if (getU32(orig, header + i * entry_size) == id)
                return header + i * entry_size;
        ADD_FAILURE() << "section " << id << " not found";
        return std::size_t{0};
    };
    auto expectOverlapRejected = [](const std::vector<std::uint8_t> &bytes,
                                    const char *what) {
        for (const bool use_view : {false, true}) {
            try {
                if (use_view)
                    (void)model::PhaseModelView::parse(bytes, "overlap");
                else
                    (void)PhaseModel::loadFromBytes(bytes, "overlap");
                FAIL() << what << " accepted (view=" << use_view << ")";
            } catch (const ModelError &e) {
                EXPECT_NE(std::string(e.what()).find("overlap"),
                          std::string::npos)
                    << what << ": " << e.what();
            }
        }
    };

    // Two entries aliasing the same byte range (offset/size/crc copied
    // wholesale, ids kept distinct — every per-section check passes).
    {
        auto bytes = orig;
        const std::size_t src = entryFor(2), dst = entryFor(3);
        putU64(bytes, dst + 8, getU64(orig, src + 8));
        putU64(bytes, dst + 16, getU64(orig, src + 16));
        putU32(bytes, dst + 24, getU32(orig, src + 24));
        expectOverlapRejected(bytes, "fully aliased sections");
    }

    // Partial overlap: slide one section's offset a few bytes into its
    // predecessor, CRC re-fixed over the shifted window.
    {
        auto bytes = orig;
        const std::size_t e = entryFor(4);
        const auto off = getU64(orig, e + 8);
        const auto size = static_cast<std::size_t>(getU64(orig, e + 16));
        ASSERT_GE(off, 4u);
        putU64(bytes, e + 8, off - 4);
        putU32(bytes, e + 24,
               testCrc32(bytes.data() + off - 4, size));
        expectOverlapRejected(bytes, "partially overlapping sections");
    }

    // A payload claiming bytes inside the header/section table itself.
    {
        auto bytes = orig;
        const std::size_t e = entryFor(7);
        putU64(bytes, e + 8, 16);
        putU32(bytes, e + 24,
               testCrc32(bytes.data() + 16,
                         static_cast<std::size_t>(getU64(orig, e + 16))));
        expectOverlapRejected(bytes, "section inside the table");
    }
}

TEST(PhaseModelFormat, RoundTripsEmptyStrings)
{
    // An empty string serializes to 4 bytes (just the u32 length); the
    // reader's per-element minimum must match or a legitimately saved
    // model full of empty ids fails to load.
    const std::string path = "/tmp/micaphase_model_empty_strs.bin";
    PhaseModel m = tinyModel();
    m.benchmark_ids = {"", ""};
    m.benchmark_suites = {"", ""};
    m.suites = {"", ""};
    m.save(path);
    const PhaseModel loaded = PhaseModel::load(path);
    expectModelsEqual(m, loaded);
    std::remove(path.c_str());
}

TEST(PhaseModelFormat, LoadRejectsWrongMagic)
{
    const std::string path = "/tmp/micaphase_model_magic.bin";
    tinyModel().save(path);
    auto bytes = readFile(path);
    bytes[0] = 'X';
    writeFile(path, bytes);
    EXPECT_THROW((void)PhaseModel::load(path), ModelError);
    std::remove(path.c_str());
}

TEST(PhaseModelFormat, LoadRejectsFutureVersion)
{
    const std::string path = "/tmp/micaphase_model_future.bin";
    tinyModel().save(path);
    auto bytes = readFile(path);
    // Version is the little-endian u32 right after the 8-byte magic (not
    // CRC-protected, so the rejection must come from the version gate).
    bytes[8] = static_cast<std::uint8_t>(model::kFormatVersion + 1);
    writeFile(path, bytes);
    try {
        (void)PhaseModel::load(path);
        FAIL() << "future version accepted";
    } catch (const ModelError &e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos);
    }
    std::remove(path.c_str());
}

TEST(PhaseModelFormat, ValidateRejectsShapeMismatches)
{
    PhaseModel m = tinyModel();
    m.norm_stddev.pop_back();
    EXPECT_THROW(m.validate(), ModelError);

    m = tinyModel();
    m.cluster_kinds.pop_back();
    EXPECT_THROW(m.validate(), ModelError);

    m = tinyModel();
    m.suite_rows.push_back(1);
    EXPECT_THROW(m.validate(), ModelError);

    m = tinyModel();
    m.key_characteristics = {99};
    EXPECT_THROW(m.validate(), ModelError);

    m = tinyModel();
    m.cluster_sizes = {5, 2}; // no longer sums to training_rows
    EXPECT_THROW(m.validate(), ModelError);
}

// The golden fixture guards the on-disk layout across platforms and
// releases: a build whose serializer drifts (field order, widths,
// endianness) will fail to reproduce or parse these exact bytes.

std::string
goldenPath()
{
    return std::string(MICAPHASE_TEST_DATA_DIR) +
           "/golden_phase_model_v1.bin";
}

TEST(PhaseModelFormat, GoldenFixtureLoads)
{
    const PhaseModel loaded = PhaseModel::load(goldenPath());
    expectModelsEqual(tinyModel(), loaded);
}

TEST(PhaseModelFormat, GoldenFixtureLayoutIsFrozen)
{
    const std::string path = "/tmp/micaphase_model_golden_re.bin";
    tinyModel().save(path);
    EXPECT_EQ(readFile(path), readFile(goldenPath()))
        << "serializer no longer reproduces the v1 golden layout — this "
           "is a format break; bump kFormatVersion and add a new fixture";
    std::remove(path.c_str());
}

// ----------------------------------------------------------------- query

TEST(PhaseModelQuery, ProjectIntervalMatchesBatchRow)
{
    const PhaseModel m = tinyModel();
    stats::Matrix rows(0, 0);
    rows.appendRow(std::vector<double>{2.0, -0.5, 1.0});
    rows.appendRow(std::vector<double>{-1.0, 3.25, 0.0});
    const model::Projection batch = m.projectBenchmark(rows);
    for (std::size_t r = 0; r < rows.rows(); ++r) {
        const auto one = m.projectInterval(rows.row(r));
        EXPECT_EQ(one.cluster, batch.assignment[r]);
        EXPECT_EQ(one.dist2, batch.dist2[r]);
        ASSERT_EQ(one.reduced.size(), batch.reduced.cols());
        for (std::size_t c = 0; c < one.reduced.size(); ++c)
            EXPECT_EQ(one.reduced[c], batch.reduced(r, c));
    }
}

TEST(PhaseModelQuery, DegenerateColumnAndComponentProjectToZero)
{
    // Column 2 has sd = 0 and both loadings rows for it are zero; a value
    // there must not influence the projection (normalizeColumns maps the
    // column to exactly 0, matching training).
    const PhaseModel m = tinyModel();
    const auto a =
        m.projectInterval(std::vector<double>{2.0, -0.5, 123.0});
    const auto b =
        m.projectInterval(std::vector<double>{2.0, -0.5, -456.0});
    EXPECT_EQ(a.reduced, b.reduced);
    EXPECT_EQ(a.cluster, b.cluster);
}

TEST(PhaseModelQuery, ProjectRejectsWidthMismatch)
{
    const PhaseModel m = tinyModel();
    stats::Matrix rows(1, 2);
    EXPECT_THROW((void)m.projectBenchmark(rows), ModelError);
}

TEST(PhaseModelQuery, AssessWorkloadCountsCoverageAndExclusivity)
{
    const PhaseModel m = tinyModel();
    model::Projection proj;
    proj.reduced = stats::Matrix(4, 2);
    proj.assignment = {0, 0, 1, 0};
    proj.dist2 = {1.0, 4.0, 9.0, 0.0};
    const model::WorkloadAssessment a = m.assessWorkload(proj);
    EXPECT_EQ(a.rows, 4u);
    EXPECT_EQ(a.clusters_covered, 2u);
    EXPECT_DOUBLE_EQ(a.coverage_fraction, 1.0);
    // Cluster 0 is trained by both suites (shared), cluster 1 only by
    // SuiteA (exclusive).
    EXPECT_DOUBLE_EQ(a.shared_fraction, 0.75);
    EXPECT_DOUBLE_EQ(a.exclusive_fraction[0], 0.25);
    EXPECT_DOUBLE_EQ(a.exclusive_fraction[1], 0.0);
    EXPECT_DOUBLE_EQ(a.novel_fraction, 0.0);
    EXPECT_DOUBLE_EQ(a.mean_distance, (1.0 + 2.0 + 3.0 + 0.0) / 4.0);
    EXPECT_DOUBLE_EQ(a.max_distance, 3.0);
    ASSERT_EQ(a.cumulative.size(), 2u);
    EXPECT_DOUBLE_EQ(a.cumulative[0], 0.75);
    EXPECT_DOUBLE_EQ(a.cumulative[1], 1.0);
    EXPECT_EQ(a.clustersToCover(0.9), 2u);
}

TEST(PhaseModelQuery, TrainingCoverageFromSuiteRows)
{
    const model::TrainingCoverage cov = tinyModel().trainingCoverage();
    ASSERT_EQ(cov.suites.size(), 2u);
    EXPECT_EQ(cov.coverage[0], 2u); // SuiteA in both clusters
    EXPECT_EQ(cov.coverage[1], 1u); // SuiteB only in the mixed one
    // SuiteA: 2 of its 4 rows sit in its exclusive cluster 1.
    EXPECT_DOUBLE_EQ(cov.uniqueness[0], 0.5);
    EXPECT_DOUBLE_EQ(cov.uniqueness[1], 0.0);
}

// -------------------------------------------------------------- keystone

core::ExperimentConfig
miniConfig(unsigned threads)
{
    core::ExperimentConfig cfg;
    cfg.interval_instructions = 2000;
    cfg.interval_scale = 0.02;
    cfg.samples_per_benchmark = 20;
    cfg.kmeans_k = 24;
    cfg.kmeans_restarts = 2;
    cfg.num_prominent = 12;
    cfg.threads = threads;
    cfg.cache_dir.clear(); // run live: the point is thread invariance
    return cfg;
}

TEST(PhaseModelPipeline, ReloadedModelReprojectsTrainingBitwise)
{
    // The keystone guarantee: for every thread count, freezing the
    // pipeline's analysis via config.model_path, reloading the file, and
    // projecting the training sample reproduces the in-memory reduced
    // matrix and cluster assignments bit for bit.
    const std::string path = "/tmp/micaphase_model_keystone.bin";
    for (const unsigned threads : {1u, 2u, 4u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        core::ExperimentConfig cfg = miniConfig(threads);
        cfg.model_path = path;
        const auto out = core::runFullExperiment(cfg);
        const PhaseModel m = PhaseModel::load(path);

        EXPECT_EQ(m.analysis_key, cfg.analysisKey());
        EXPECT_EQ(m.training_rows, out.sampled.data.rows());

        const model::Projection proj =
            m.projectBenchmark(out.sampled.data);
        const auto &want = out.analysis.reduced;
        ASSERT_EQ(proj.reduced.rows(), want.rows());
        ASSERT_EQ(proj.reduced.cols(), want.cols());
        EXPECT_EQ(std::memcmp(proj.reduced.data().data(),
                              want.data().data(),
                              want.data().size() * sizeof(double)),
                  0)
            << "reduced matrix deviates bitwise";
        EXPECT_EQ(proj.assignment, out.analysis.clustering.assignment);

        // The serving paths inherit the same guarantee: the fused batched
        // kernel (any thread count) and the zero-copy mmap view must all
        // reproduce the live pipeline's bits for every training row.
        auto expectSame = [&](const model::Projection &got,
                              const char *which) {
            EXPECT_EQ(got.assignment, proj.assignment) << which;
            ASSERT_EQ(got.reduced.data().size(),
                      proj.reduced.data().size())
                << which;
            EXPECT_EQ(std::memcmp(got.reduced.data().data(),
                                  proj.reduced.data().data(),
                                  proj.reduced.data().size() *
                                      sizeof(double)),
                      0)
                << which << " reduced deviates bitwise";
            ASSERT_EQ(got.dist2.size(), proj.dist2.size()) << which;
            EXPECT_EQ(std::memcmp(got.dist2.data(), proj.dist2.data(),
                                  proj.dist2.size() * sizeof(double)),
                      0)
                << which << " dist2 deviates bitwise";
        };
        stats::ProjectOptions popts;
        popts.threads = threads;
        expectSame(m.placeBatch(out.sampled.data, popts), "placeBatch");

        const auto view = model::PhaseModelView::open(path);
        expectSame(view.placeBatch(out.sampled.data, popts),
                   "packed view placeBatch");

        const std::string aligned = path + ".aligned";
        m.save(aligned, model::SaveOptions{.align_sections = true});
        const auto aligned_view = model::PhaseModelView::open(aligned);
        std::remove(aligned.c_str());
        if (std::endian::native == std::endian::little)
            EXPECT_TRUE(aligned_view.zeroCopy());
        expectSame(aligned_view.placeBatch(out.sampled.data, popts),
                   "aligned view placeBatch");
    }
    std::remove(path.c_str());
}

TEST(PhaseModelPipeline, FrozenFiguresMatchLiveComparison)
{
    // Figure 4/6 numbers recomputed from the artifact alone must equal
    // the live compareSuites output it was frozen from.
    const std::string path = "/tmp/micaphase_model_figs.bin";
    core::ExperimentConfig cfg = miniConfig(4);
    cfg.model_path = path;
    const auto out = core::runFullExperiment(cfg);
    const PhaseModel m = PhaseModel::load(path);
    const model::TrainingCoverage cov = m.trainingCoverage();
    ASSERT_EQ(cov.suites, out.comparison.suites);
    EXPECT_EQ(cov.coverage, out.comparison.coverage);
    ASSERT_EQ(cov.uniqueness.size(), out.comparison.uniqueness.size());
    for (std::size_t s = 0; s < cov.uniqueness.size(); ++s)
        EXPECT_DOUBLE_EQ(cov.uniqueness[s], out.comparison.uniqueness[s]);
    std::remove(path.c_str());
}

TEST(PhaseModelPipeline, ModelPathExcludedFromCacheKeys)
{
    core::ExperimentConfig a;
    core::ExperimentConfig b = a;
    b.model_path = "/tmp/somewhere_else.bin";
    EXPECT_EQ(a.characterizationKey(), b.characterizationKey());
    EXPECT_EQ(a.analysisKey(), b.analysisKey());
}

TEST(PhaseModelPipeline, BuilderEmbedsGaKeys)
{
    core::ExperimentConfig cfg = miniConfig(4);
    const auto out = core::runFullExperiment(cfg);
    const auto keys = core::selectKeyCharacteristics(out, 4);
    const PhaseModel m = core::buildPhaseModel(out, keys);
    ASSERT_EQ(m.key_characteristics.size(), keys.selected.size());
    for (std::size_t i = 0; i < keys.selected.size(); ++i)
        EXPECT_EQ(m.key_characteristics[i], keys.selected[i]);
    EXPECT_EQ(m.ga_fitness, keys.fitness);
}

} // namespace
