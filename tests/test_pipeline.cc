/**
 * @file
 * Integration tests: the full methodology end to end on a scaled-down
 * configuration, asserting both structural invariants and the paper's
 * headline qualitative findings (section 5).
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "core/pipeline.hh"

namespace {

using namespace mica;

/** One shared scaled-down experiment (built once; ~2s). */
const core::ExperimentOutputs &
experiment()
{
    static const core::ExperimentOutputs outputs = [] {
        core::ExperimentConfig cfg;
        cfg.interval_instructions = 20000;
        cfg.interval_scale = 0.2;
        cfg.samples_per_benchmark = 50;
        cfg.kmeans_k = 120;
        cfg.num_prominent = 60;
        cfg.kmeans_restarts = 2;
        cfg.cache_dir = "/tmp/micaphase_pipeline_test_cache";
        return core::runFullExperiment(cfg);
    }();
    return outputs;
}

TEST(Pipeline, CharacterizesEveryBenchmark)
{
    const auto &out = experiment();
    EXPECT_EQ(out.characterization.benchmark_ids.size(), 77u);
    const auto counts = out.characterization.intervalsPerBenchmark();
    for (std::size_t b = 0; b < counts.size(); ++b)
        EXPECT_GE(counts[b], 1u)
            << out.characterization.benchmark_ids[b];
}

TEST(Pipeline, SampledDatasetShape)
{
    const auto &out = experiment();
    EXPECT_EQ(out.sampled.data.rows(), 77u * 50u);
    EXPECT_EQ(out.sampled.data.cols(), metrics::kNumCharacteristics);
}

TEST(Pipeline, PcaKeepsSubstantialVariance)
{
    const auto &out = experiment();
    // The paper retains components explaining 85.4% of total variance.
    EXPECT_GT(out.analysis.pca_explained, 0.7);
    EXPECT_GT(out.analysis.pca_components, 5u);
    EXPECT_LT(out.analysis.pca_components, 40u);
}

TEST(Pipeline, ProminentPhasesCoverMostExecution)
{
    const auto &out = experiment();
    // Paper: 100 of 300 clusters cover 87.8%. Our scaled run keeps the
    // same 1:3 ratio and must land in the same regime.
    EXPECT_GT(out.analysis.prominentCoverage(), 0.6);
    EXPECT_LT(out.analysis.prominentCoverage(), 1.0);
}

TEST(Pipeline, ClusterWeightsAccountForEverything)
{
    const auto &out = experiment();
    double total = 0.0;
    for (const auto &c : out.analysis.clusters)
        total += c.weight;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Pipeline, AllThreeClusterKindsAppear)
{
    const auto &out = experiment();
    int counts[3] = {0, 0, 0};
    for (const auto &c : out.analysis.clusters)
        ++counts[static_cast<int>(c.kind)];
    EXPECT_GT(counts[0], 0) << "no benchmark-specific clusters";
    EXPECT_GT(counts[1], 0) << "no suite-specific clusters";
    EXPECT_GT(counts[2], 0) << "no mixed clusters";
}

TEST(Pipeline, PaperFinding_SpecCoversMoreThanDomainSuites)
{
    const auto &cmp = experiment().comparison;
    const auto spec_int06 = cmp.coverage[cmp.indexOf("SPECint2006")];
    const auto spec_fp06 = cmp.coverage[cmp.indexOf("SPECfp2006")];
    const auto bmw = cmp.coverage[cmp.indexOf("BMW")];
    const auto media = cmp.coverage[cmp.indexOf("MediaBenchII")];
    const auto bio = cmp.coverage[cmp.indexOf("BioPerf")];
    // Domain-specific suites cover a much narrower part of the space.
    EXPECT_GT(spec_int06, bmw);
    EXPECT_GT(spec_int06, media);
    EXPECT_GT(spec_fp06, bmw);
    EXPECT_GT(spec_fp06, media);
    EXPECT_GT(spec_fp06, bio);
}

TEST(Pipeline, PaperFinding_Cpu2006CoversMoreThanCpu2000)
{
    const auto &cmp = experiment().comparison;
    EXPECT_GE(cmp.coverage[cmp.indexOf("SPECint2006")],
              cmp.coverage[cmp.indexOf("SPECint2000")]);
    EXPECT_GE(cmp.coverage[cmp.indexOf("SPECfp2006")],
              cmp.coverage[cmp.indexOf("SPECfp2000")]);
}

TEST(Pipeline, PaperFinding_BioPerfHasMostUniqueBehaviour)
{
    const auto &cmp = experiment().comparison;
    const double bio = cmp.uniqueness[cmp.indexOf("BioPerf")];
    EXPECT_GT(bio, 0.35);
    EXPECT_GT(bio, cmp.uniqueness[cmp.indexOf("MediaBenchII")]);
    EXPECT_GT(bio, cmp.uniqueness[cmp.indexOf("SPECint2000")]);
    EXPECT_GT(bio, cmp.uniqueness[cmp.indexOf("SPECint2006")]);
}

TEST(Pipeline, PaperFinding_DomainSuitesLessDiverse)
{
    const auto &cmp = experiment().comparison;
    // Fewer clusters needed to cover 90% of a domain-specific suite than
    // of SPEC CPU2006 (lower diversity).
    EXPECT_LT(cmp.clustersToCover(cmp.indexOf("MediaBenchII"), 0.9),
              cmp.clustersToCover(cmp.indexOf("SPECfp2006"), 0.9));
    EXPECT_LT(cmp.clustersToCover(cmp.indexOf("BMW"), 0.9),
              cmp.clustersToCover(cmp.indexOf("SPECint2006"), 0.9));
}

TEST(Pipeline, UniquenessWithinBounds)
{
    const auto &cmp = experiment().comparison;
    for (double u : cmp.uniqueness) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
}

TEST(Pipeline, KeyCharacteristicSelectionWorks)
{
    const auto &out = experiment();
    const auto result = core::selectKeyCharacteristics(out, 8);
    EXPECT_EQ(result.selected.size(), 8u);
    EXPECT_GT(result.fitness, 0.5)
        << "8 key characteristics should correlate decently";
    for (std::size_t idx : result.selected)
        EXPECT_LT(idx, metrics::kNumCharacteristics);
}

TEST(Pipeline, KiviatPanelConstruction)
{
    const auto &out = experiment();
    const std::vector<std::size_t> keys = {0, 1, 20, 33, 55};
    const auto axes = core::kiviatAxes(out, keys);
    ASSERT_EQ(axes.size(), keys.size());
    for (const auto &a : axes) {
        EXPECT_LE(a.min, a.mean);
        EXPECT_LE(a.mean, a.max);
    }
    const auto panel =
        core::kiviatPanelFor(out, out.analysis.clusters[0], keys);
    EXPECT_EQ(panel.values.size(), keys.size());
    EXPECT_FALSE(panel.slices.empty());
    double total = 0.0;
    for (const auto &s : panel.slices)
        total += s.fraction;
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_NE(panel.title.find("weight"), std::string::npos);
}

TEST(Pipeline, DeterministicEndToEnd)
{
    // Re-running with the same config (cache warm) reproduces the exact
    // comparison numbers.
    core::ExperimentConfig cfg = experiment().config;
    const auto again = core::runFullExperiment(cfg);
    EXPECT_EQ(again.comparison.coverage, experiment().comparison.coverage);
    EXPECT_EQ(again.comparison.uniqueness,
              experiment().comparison.uniqueness);
}

} // namespace
