/**
 * @file
 * Unit tests for the MicaProfiler: each of the six Table-1 metric
 * categories is validated against hand-built programs with known
 * behaviour.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "mica/profiler.hh"
#include "vm/cpu.hh"

namespace {

using namespace mica;
namespace m = metrics::midx;
using profiler::MicaProfiler;

/** Run a program for `budget` instructions with a given interval size. */
std::vector<metrics::CharacteristicVector>
profile(const std::string &source, std::uint64_t interval,
        std::uint64_t budget)
{
    const auto prog = assembler::assemble(source);
    vm::Cpu cpu(prog);
    MicaProfiler prof(interval);
    (void)cpu.run(budget, &prof);
    return prof.intervals();
}

TEST(Profiler, IntervalZeroThrows)
{
    EXPECT_THROW(MicaProfiler prof(0), std::invalid_argument);
}

TEST(Profiler, IntervalCountMatchesBudget)
{
    const auto iv = profile(R"(
    loop:
        addi x5, x5, 1
        jal x0, loop
    )",
                            1000, 5500);
    EXPECT_EQ(iv.size(), 5u) << "partial trailing interval not emitted";
}

TEST(Profiler, FlushPartialEmitsTail)
{
    const auto prog = assembler::assemble("addi x5, x0, 1\n halt");
    vm::Cpu cpu(prog);
    MicaProfiler prof(1000);
    (void)cpu.run(100, &prof);
    EXPECT_TRUE(prof.flushPartial());
    EXPECT_EQ(prof.intervals().size(), 1u);
    EXPECT_FALSE(prof.flushPartial()) << "nothing left to flush";
}

TEST(Profiler, MixFractionsKnownLoop)
{
    // Loop body: ld, sd, addi, addi, bne (5 instructions).
    const auto iv = profile(R"(
        .data
        buf: .zero 8
        .text
    loop:
        ld x5, buf(x0)
        sd x5, buf(x0)
        addi x5, x5, 1
        addi x6, x6, 1
        bne x6, x0, loop
    )",
                            5000, 5000);
    ASSERT_EQ(iv.size(), 1u);
    const auto &v = iv[0];
    EXPECT_NEAR(v[m::MixMemRead], 0.2, 0.01);
    EXPECT_NEAR(v[m::MixMemWrite], 0.2, 0.01);
    EXPECT_NEAR(v[m::MixControl], 0.2, 0.01);
    EXPECT_NEAR(v[m::MixCondBranch], 0.2, 0.01);
    EXPECT_NEAR(v[m::MixIntArith], 0.4, 0.01);
    EXPECT_NEAR(v[m::MixFpArith], 0.0, 1e-9);
}

TEST(Profiler, CallReturnFractions)
{
    const auto iv = profile(R"(
        jal x0, main
    fn:
        jalr x0, ra, 0
    main:
        jal ra, fn
        jal x0, main
    )",
                            3000, 3000);
    ASSERT_EQ(iv.size(), 1u);
    const auto &v = iv[0];
    // Steady state: call, ret, jump — one third each.
    EXPECT_NEAR(v[m::MixCall], 1.0 / 3.0, 0.01);
    EXPECT_NEAR(v[m::MixReturn], 1.0 / 3.0, 0.01);
    EXPECT_NEAR(v[m::MixControl], 1.0, 0.01);
}

TEST(Profiler, MoveClassification)
{
    const auto iv = profile(R"(
    loop:
        addi x5, x0, 7      ; li -> move
        addi x6, x5, 1      ; real add
        jal x0, loop
    )",
                            3000, 3000);
    const auto &v = iv[0];
    EXPECT_NEAR(v[m::MixMove], 1.0 / 3.0, 0.01);
    EXPECT_NEAR(v[m::MixIntArith], 1.0 / 3.0, 0.01);
}

TEST(Profiler, FpCategories)
{
    const auto iv = profile(R"(
        .data
        a: .double 1.1
        .text
        fld f1, a(x0)
        fld f2, a(x0)
    loop:
        fadd f3, f1, f2
        fmul f4, f1, f2
        fdiv f5, f1, f2
        fsqrt f6, f1
        fcmplt x5, f1, f2
        cvtif f7, x5
        jal x0, loop
    )",
                            7000, 7000);
    const auto &v = iv[0];
    EXPECT_NEAR(v[m::MixFpArith], 1.0 / 7.0, 0.01);
    EXPECT_NEAR(v[m::MixFpMul], 1.0 / 7.0, 0.01);
    EXPECT_NEAR(v[m::MixFpDiv], 1.0 / 7.0, 0.01);
    EXPECT_NEAR(v[m::MixFpSqrt], 1.0 / 7.0, 0.01);
    EXPECT_NEAR(v[m::MixFpCmp], 1.0 / 7.0, 0.01);
    EXPECT_NEAR(v[m::MixFpCvt], 1.0 / 7.0, 0.01);
}

TEST(Profiler, RegisterOperandCount)
{
    // add reads 2, addi reads 1, bne reads 2: 5 reads / 3 instructions.
    const auto iv = profile(R"(
    loop:
        add x5, x6, x7
        addi x6, x6, 1
        bne x6, x0, loop
    )",
                            3000, 3000);
    EXPECT_NEAR(iv[0][m::RegInputOperands], 5.0 / 3.0, 0.01);
}

TEST(Profiler, DegreeOfUse)
{
    // Two reads per write: add writes x5 (read twice next iteration).
    const auto iv = profile(R"(
    loop:
        add x5, x5, x5
        jal x0, loop
    )",
                            2000, 2000);
    // Reads: 2 per add; writes: 1 per add (jal x0 discards its dest).
    EXPECT_NEAR(iv[0][m::RegDegreeOfUse], 2.0, 0.01);
}

TEST(Profiler, DependencyDistanceBuckets)
{
    // x5 written then read immediately (distance 1); x7 read 4
    // instructions after its write (distance 4).
    const auto iv = profile(R"(
    loop:
        addi x7, x7, 1      ; writes x7 (also reads x7: distance 4)
        addi x5, x5, 1      ; distance 1 from previous loop? no: 4
        add x6, x5, x5      ; two reads of x5 at distance 1
        jal x0, loop
    )",
                            4000, 4000);
    const auto &v = iv[0];
    const double total = v[m::RegDepDist1] + v[m::RegDepDist2] +
                         v[m::RegDepDist4] + v[m::RegDepDist8] +
                         v[m::RegDepDist16] + v[m::RegDepDist32] +
                         v[m::RegDepDistGt32];
    EXPECT_NEAR(total, 1.0, 1e-6) << "buckets must partition all reads";
    // Reads per iteration: x7@4, x5@4, x5@1, x5@1 -> half at <=1, half in
    // the (2,4] bucket.
    EXPECT_NEAR(v[m::RegDepDist1], 0.5, 0.02);
    EXPECT_NEAR(v[m::RegDepDist4], 0.5, 0.02);
}

TEST(Profiler, InstructionFootprintCounts)
{
    // A loop of 16 instructions = 128 bytes = 2 or 3 64B blocks, 1 page.
    std::string body;
    for (int i = 0; i < 15; ++i)
        body += "addi x5, x5, 1\n";
    const auto iv =
        profile("loop:\n" + body + "jal x0, loop", 4000, 4000);
    const auto &v = iv[0];
    EXPECT_GE(v[m::InstrFootprint64B], 2.0);
    EXPECT_LE(v[m::InstrFootprint64B], 3.0);
    EXPECT_EQ(v[m::InstrFootprint4K], 1.0);
}

TEST(Profiler, DataFootprintCounts)
{
    // Touch 4096 consecutive bytes once, then spin.
    const auto iv = profile(R"(
        .data
        buf: .zero 8192
        .text
        addi x5, x0, buf
        addi x6, x0, 512
    loop:
        ld x7, 0(x5)
        addi x5, x5, 8
        addi x6, x6, -1
        bne x6, x0, loop
        halt
    )",
                            2000, 2000);
    ASSERT_GE(iv.size(), 1u);
    // First interval: 2000 instructions = 500 loads over 666 iterations...
    // loads cover 8 * (2000/4) bytes = 4000 bytes ~ 62-63 blocks.
    EXPECT_GT(iv[0][m::DataFootprint64B], 55.0);
    EXPECT_LE(iv[0][m::DataFootprint4K], 2.0);
}

TEST(Profiler, UnitStrideDistributions)
{
    const auto iv = profile(R"(
        .data
        buf: .zero 65536
        .text
        addi x5, x0, buf
    loop:
        ld x6, 0(x5)
        sd x6, 8(x5)
        addi x5, x5, 8
        slti x7, x5, 17000000   ; keep going until far into the buffer
        bne x7, x0, loop
        halt
    )",
                            4000, 4000);
    const auto &v = iv[0];
    // Loads advance 8 bytes per iteration: local stride 8 globally too.
    EXPECT_GT(v[m::LocalLoadStride8], 0.95);
    EXPECT_GT(v[m::LocalStoreStride8], 0.95);
    EXPECT_GT(v[m::GlobalLoadStride64], 0.95);
    EXPECT_GT(v[m::GlobalStoreStride64], 0.95);
    // Cumulative: wider thresholds dominate narrower ones.
    EXPECT_GE(v[m::LocalLoadStride64], v[m::LocalLoadStride8]);
    EXPECT_GE(v[m::LocalLoadStride512], v[m::LocalLoadStride64]);
    EXPECT_GE(v[m::LocalLoadStride4096], v[m::LocalLoadStride512]);
    EXPECT_EQ(v[m::LocalLoadStride0], 0.0);
}

TEST(Profiler, ZeroStrideDetected)
{
    const auto iv = profile(R"(
        .data
        cell: .word64 1
        .text
    loop:
        ld x5, cell(x0)
        jal x0, loop
    )",
                            2000, 2000);
    EXPECT_GT(iv[0][m::LocalLoadStride0], 0.99);
}

TEST(Profiler, LargeStrideFallsOutsideBuckets)
{
    const auto iv = profile(R"(
        .data
        buf: .zero 8000000
        .text
        addi x5, x0, buf
    loop:
        ld x6, 0(x5)
        addi x5, x5, 65536      ; 64KB stride > every bucket
        jal x0, loop
    )",
                            3000, 3000);
    const auto &v = iv[0];
    EXPECT_LT(v[m::LocalLoadStride4096], 0.01);
    EXPECT_LT(v[m::GlobalLoadStride32768], 0.01);
}

TEST(Profiler, BranchTakenRate)
{
    // x5 counts down from 4: the loop branch runs 4 times per outer
    // iteration and is taken 3 of those 4 executions.
    const auto iv = profile(R"(
    outer:
        addi x5, x0, 4
    loop:
        addi x5, x5, -1
        bne x5, x0, loop
        jal x0, outer
    )",
                            4000, 4000);
    EXPECT_NEAR(iv[0][m::BranchTakenRate], 0.75, 0.02);
}

TEST(Profiler, TransitionRateAlternating)
{
    // x6 parity flips every iteration: the inner branch alternates.
    const auto iv = profile(R"(
    loop:
        addi x6, x6, 1
        andi x5, x6, 1
        beq x5, x0, skip
        addi x7, x7, 1
    skip:
        jal x0, loop
    )",
                            4000, 4000);
    // Branch outcomes alternate -> transition rate near 1.
    EXPECT_GT(iv[0][m::BranchTransitionRate], 0.95);
}

TEST(Profiler, TransitionRateConstant)
{
    const auto iv = profile(R"(
    loop:
        beq x0, x0, loop
    )",
                            2000, 2000);
    EXPECT_LT(iv[0][m::BranchTransitionRate], 0.01);
    EXPECT_GT(iv[0][m::BranchTakenRate], 0.99);
}

TEST(Profiler, PpmLearnsRegularLoop)
{
    const auto iv = profile(R"(
    outer:
        addi x5, x0, 8
    loop:
        addi x5, x5, -1
        bne x5, x0, loop
        jal x0, outer
    )",
                            10000, 20000);
    ASSERT_EQ(iv.size(), 2u);
    // Second interval: predictors are warm, the period-8 loop is fully
    // predictable with >= 8 bits of history.
    EXPECT_LT(iv[1][m::PpmGag12], 0.02);
    EXPECT_LT(iv[1][m::PpmPas12], 0.02);
    // Miss rates never exceed 1.
    for (std::size_t p = m::PpmGag4; p <= m::PpmPas12; ++p) {
        EXPECT_GE(iv[1][p], 0.0);
        EXPECT_LE(iv[1][p], 1.0);
    }
}

TEST(Profiler, IlpMetricsPopulated)
{
    const auto iv = profile(R"(
    loop:
        addi x5, x5, 1
        addi x6, x6, 1
        addi x7, x7, 1
        jal x0, loop
    )",
                            4000, 4000);
    EXPECT_GT(iv[0][m::Ilp32], 1.0);
    EXPECT_LE(iv[0][m::Ilp32], 32.0);
    EXPECT_GE(iv[0][m::Ilp256], iv[0][m::Ilp32] - 1e-9);
}

TEST(Profiler, CountersResetBetweenIntervals)
{
    // Phase change: loads for the first interval, pure ALU afterwards.
    const auto iv = profile(R"(
        .data
        buf: .zero 64
        .text
        addi x6, x0, 1000
    p1:
        ld x5, buf(x0)
        addi x6, x6, -1
        bne x6, x0, p1
    p2:
        addi x7, x7, 1
        jal x0, p2
    )",
                            3000, 9000);
    ASSERT_EQ(iv.size(), 3u);
    EXPECT_GT(iv[0][m::MixMemRead], 0.3);
    EXPECT_LT(iv[2][m::MixMemRead], 0.01)
        << "memory counters leaked into the ALU phase";
    EXPECT_EQ(iv[2][m::DataFootprint64B], 0.0);
}

TEST(Profiler, InstructionsObservedAdvances)
{
    const auto prog = assembler::assemble("loop: jal x0, loop");
    vm::Cpu cpu(prog);
    MicaProfiler prof(100);
    (void)cpu.run(250, &prof);
    EXPECT_EQ(prof.instructionsObserved(), 250u);
    EXPECT_EQ(prof.intervalLength(), 100u);
    EXPECT_EQ(prof.intervals().size(), 2u);
}

} // namespace
