/**
 * @file
 * Program verifier: every diagnostic class triggered by a seeded defect,
 * plus clean-program negative tests and the catalog acceptance check.
 */

#include <gtest/gtest.h>

#include "analysis/verifier.hh"
#include "workloads/program_builder.hh"
#include "workloads/workload.hh"

namespace {

using namespace mica;
using analysis::Check;
using analysis::Options;
using analysis::Report;
using analysis::Severity;
using analysis::verify;
using isa::Instruction;
using isa::Opcode;
using workloads::Label;
using workloads::ProgramBuilder;

/** A well-formed program: defines what it reads, loops, halts. */
isa::Program
cleanProgram()
{
    ProgramBuilder pb("clean");
    const std::uint64_t buf = pb.allocData(64);
    pb.li(5, static_cast<std::int64_t>(buf));
    pb.li(6, 4);
    Label top = pb.newLabel();
    pb.bind(top);
    pb.load(Opcode::Ld, 7, 5, 0);
    pb.alui(Opcode::Addi, 7, 7, 1);
    pb.store(Opcode::Sd, 7, 5, 0);
    pb.alui(Opcode::Addi, 6, 6, -1);
    pb.branch(Opcode::Bne, 6, isa::kRegZero, top);
    pb.halt();
    return pb.build();
}

TEST(Verifier, CleanProgramHasNoDiagnostics)
{
    const Report report = verify(cleanProgram());
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.diagnostics.size(), 0u) << report.toString();
}

TEST(Verifier, EmptyProgramIsAnError)
{
    const Report report = verify(isa::Program{});
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(Check::EmptyProgram));
}

TEST(Verifier, BranchTargetOutsideCode)
{
    // bne jumping 100 instructions past the end.
    isa::Program program = cleanProgram();
    program.code[6].imm = 800;
    const Report report = verify(program);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(Check::BranchTargetOutOfRange))
        << report.toString();
}

TEST(Verifier, BranchTargetUnaligned)
{
    isa::Program program = cleanProgram();
    program.code[6].imm = -12; // not a multiple of kInstrBytes
    const Report report = verify(program);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(Check::BranchTargetOutOfRange));
}

TEST(Verifier, ImmediateOutOfRange)
{
    isa::Program program = cleanProgram();
    program.code[4].imm = isa::kImmMax + 1;
    const Report report = verify(program);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(Check::ImmediateOutOfRange));
}

TEST(Verifier, ShiftAmountOutOfRange)
{
    ProgramBuilder pb("shift");
    pb.li(5, 1);
    pb.alui(Opcode::Slli, 5, 5, 64);
    pb.halt();
    const Report report = verify(pb.build());
    EXPECT_TRUE(report.has(Check::ShiftAmountOutOfRange));
    EXPECT_TRUE(report.ok()); // warning only: the VM masks the amount
}

TEST(Verifier, BadRegisterIndex)
{
    isa::Program program = cleanProgram();
    program.code[3].rs1 = 40; // beyond x31; decode would reject this too
    const Report report = verify(program);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(Check::BadRegisterIndex));
}

TEST(Verifier, StoreIntoCodeSegment)
{
    ProgramBuilder pb("smc");
    pb.li(5, static_cast<std::int64_t>(isa::kDefaultCodeBase));
    pb.store(Opcode::Sd, 6, 5, 8);
    pb.halt();
    const Report report = verify(pb.build());
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(Check::CodeSegmentAccess)) << report.toString();
}

TEST(Verifier, LoadOutsideAnySegment)
{
    ProgramBuilder pb("wild");
    (void)pb.allocData(32);
    pb.li(5, 0x500000); // far from code, data and stack
    pb.load(Opcode::Ld, 6, 5, 0);
    pb.halt();
    const Report report = verify(pb.build());
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(Check::MemAccessOutOfSegment))
        << report.toString();
}

TEST(Verifier, MisalignedResolvableAccess)
{
    ProgramBuilder pb("misaligned");
    const std::uint64_t buf = pb.allocData(64);
    pb.li(5, static_cast<std::int64_t>(buf));
    pb.load(Opcode::Ld, 6, 5, 3); // 8-byte load at +3
    pb.halt();
    const Report report = verify(pb.build());
    EXPECT_TRUE(report.has(Check::MisalignedAccess));
    EXPECT_TRUE(report.ok()); // warning: the VM handles it
}

TEST(Verifier, UseBeforeDefIsAWarning)
{
    ProgramBuilder pb("ubd");
    pb.alu(Opcode::Add, 6, 5, 5); // x5 never written anywhere
    pb.halt();
    const Report report = verify(pb.build());
    EXPECT_TRUE(report.has(Check::UseBeforeDef));
    EXPECT_TRUE(report.ok());
    // x0 and the stack pointer are VM-defined, not use-before-def.
    ProgramBuilder ok("sp");
    ok.alui(Opcode::Addi, 5, isa::kRegSp, -8);
    ok.alu(Opcode::Add, 6, 5, isa::kRegZero);
    ok.halt();
    EXPECT_FALSE(verify(ok.build()).has(Check::UseBeforeDef));
}

TEST(Verifier, FpUseBeforeDefTracksOwnFile)
{
    ProgramBuilder pb("fp-ubd");
    pb.li(5, 1);
    pb.cvtif(1, 5);                  // defines f1
    pb.fop(Opcode::Fadd, 2, 1, 3);   // f3 never defined
    pb.halt();
    const Report report = verify(pb.build());
    ASSERT_TRUE(report.has(Check::UseBeforeDef));
    EXPECT_NE(report.toString().find("f3"), std::string::npos)
        << report.toString();
}

TEST(Verifier, UnreachableBlockWarning)
{
    ProgramBuilder pb("dead");
    Label end = pb.newLabel();
    pb.jump(end);
    pb.li(5, 1); // skipped by the jump, no inbound edge
    pb.bind(end);
    pb.halt();
    const Report report = verify(pb.build());
    EXPECT_TRUE(report.has(Check::UnreachableBlock));
    EXPECT_TRUE(report.ok());
}

TEST(Verifier, ReturnWithoutLink)
{
    ProgramBuilder pb("noret");
    pb.li(5, 1);
    pb.ret(); // no call ever defined ra
    const Report report = verify(pb.build());
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(Check::ReturnWithoutLink));
}

TEST(Verifier, ProperCallReturnIsClean)
{
    ProgramBuilder pb("callret");
    Label main = pb.newLabel();
    pb.jump(main);
    Label sub = pb.newLabel();
    pb.bind(sub);
    pb.li(5, 7);
    pb.ret();
    pb.bind(main);
    pb.call(sub);
    pb.halt();
    const Report report = verify(pb.build());
    EXPECT_FALSE(report.has(Check::ReturnWithoutLink));
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(Verifier, FallsOffEnd)
{
    ProgramBuilder pb("falloff");
    pb.li(5, 1);
    pb.alui(Opcode::Addi, 5, 5, 1); // last instruction is not control
    const Report report = verify(pb.build());
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(Check::FallsOffEnd));
}

TEST(Verifier, InfiniteLoopDetected)
{
    ProgramBuilder pb("forever");
    Label top = pb.newLabel();
    pb.bind(top);
    pb.li(5, 1);
    pb.jump(top);
    const Report report = verify(pb.build());
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(Check::InfiniteLoop));

    // The workload contract accepts budget-bounded non-termination.
    Options allow;
    allow.allow_nonterminating = true;
    EXPECT_TRUE(verify(pb.build(), allow).ok());
}

TEST(Verifier, LoopWithExitIsNotInfinite)
{
    const Report report = verify(cleanProgram());
    EXPECT_FALSE(report.has(Check::InfiniteLoop));
}

TEST(Verifier, DiagnosticsCarryPcAndDisassembly)
{
    ProgramBuilder pb("diag");
    pb.li(5, 1);
    pb.ret();
    const Report report = verify(pb.build());
    ASSERT_FALSE(report.diagnostics.empty());
    const analysis::Diagnostic &d = report.diagnostics.front();
    EXPECT_EQ(d.instr_index, 1u); // the ret
    EXPECT_EQ(d.pc, isa::kDefaultCodeBase + d.instr_index * 8);
    EXPECT_NE(d.message.find("jalr"), std::string::npos) << d.message;
    EXPECT_NE(report.toString().find("error"), std::string::npos);
    EXPECT_NE(report.toString().find("warning"), std::string::npos);
}

TEST(Verifier, ReportCountsAndSeverities)
{
    ProgramBuilder pb("counts");
    pb.alu(Opcode::Add, 6, 5, 5); // warning: use-before-def (x5)
    pb.ret(); // error: return-without-link; warning: use-before-def (ra)
    const Report report = verify(pb.build());
    EXPECT_EQ(report.errorCount(), 1u) << report.toString();
    EXPECT_EQ(report.warningCount(), 2u) << report.toString();
    EXPECT_FALSE(report.ok());
}

TEST(Verifier, MaybeUseBeforeDefOnPartiallyDefinedRegister)
{
    // x7 is defined on the fallthrough path only; the merged read is a
    // maybe-use-before-def, not a hard use-before-def. The condition is
    // loaded from memory so the branch is not statically decidable.
    ProgramBuilder pb("maybe");
    const std::uint64_t buf = pb.allocData(64);
    pb.li(6, static_cast<std::int64_t>(buf));
    pb.load(Opcode::Ld, 5, 6, 0);
    Label skip = pb.newLabel();
    pb.branch(Opcode::Beq, 5, isa::kRegZero, skip);
    pb.li(7, 1);
    pb.bind(skip);
    pb.alu(Opcode::Add, 8, 7, 7);
    pb.halt();
    const Report report = verify(pb.build());
    EXPECT_TRUE(report.has(Check::MaybeUseBeforeDef)) << report.toString();
    EXPECT_FALSE(report.has(Check::UseBeforeDef));
    EXPECT_TRUE(report.ok());
}

TEST(Verifier, DeadStoreOverwrittenInSameBlock)
{
    ProgramBuilder pb("dead-store");
    pb.li(5, 1); // overwritten below before any use
    pb.li(5, 2);
    pb.alu(Opcode::Add, 6, 5, 5);
    pb.halt();
    const Report report = verify(pb.build());
    EXPECT_TRUE(report.has(Check::DeadStore)) << report.toString();
    EXPECT_TRUE(report.ok());
    bool found = false;
    for (const analysis::Diagnostic &d : report.diagnostics)
        if (d.check == Check::DeadStore) {
            EXPECT_EQ(d.instr_index, 0u);
            found = true;
        }
    EXPECT_TRUE(found);

    // A value read between the two writes is not dead.
    ProgramBuilder ok("live-store");
    ok.li(5, 1);
    ok.alu(Opcode::Add, 6, 5, 5);
    ok.li(5, 2);
    ok.alu(Opcode::Add, 7, 5, 5);
    ok.halt();
    EXPECT_FALSE(verify(ok.build()).has(Check::DeadStore));
}

TEST(Verifier, DiscardedValueWrittenToX0)
{
    ProgramBuilder pb("discard");
    pb.li(5, 1);
    pb.alu(Opcode::Add, 0, 5, 5); // result lands in x0
    pb.halt();
    const Report report = verify(pb.build());
    EXPECT_TRUE(report.has(Check::DiscardedValue)) << report.toString();
    EXPECT_TRUE(report.ok());
    // jal/jalr with rd = x0 are the jump idioms, not discarded values.
    ProgramBuilder ok("jumps");
    Label end = ok.newLabel();
    ok.jump(end);
    ok.bind(end);
    ok.halt();
    EXPECT_FALSE(verify(ok.build()).has(Check::DiscardedValue));
}

TEST(Verifier, ConstantBranchIsReported)
{
    ProgramBuilder pb("constbr");
    pb.li(5, 1);
    Label t = pb.newLabel();
    pb.branch(Opcode::Beq, 5, isa::kRegZero, t); // 1 == 0: never taken
    pb.li(6, 1);
    pb.bind(t);
    pb.halt();
    const Report report = verify(pb.build());
    EXPECT_TRUE(report.has(Check::ConstantBranch)) << report.toString();
    EXPECT_TRUE(report.ok());
}

TEST(Verifier, DataDependentBranchIsNotConstant)
{
    const Report report = verify(cleanProgram());
    EXPECT_FALSE(report.has(Check::ConstantBranch)) << report.toString();
}

TEST(Verifier, RangeProvesAccessOutOfEverySegment)
{
    // Two definitions defeat the single-def constant resolver, but the
    // value-range analysis still proves the address exactly: 0x500000 is
    // below the data segment and far from code and stack.
    ProgramBuilder pb("range-oob");
    (void)pb.allocData(64);
    pb.li(5, 0x400000);
    pb.alui(Opcode::Addi, 5, 5, 0x100000);
    pb.load(Opcode::Ld, 6, 5, 0);
    pb.halt();
    const Report report = verify(pb.build());
    EXPECT_TRUE(report.has(Check::RangeProvenOutOfSegment))
        << report.toString();
    EXPECT_FALSE(report.ok());
}

TEST(Verifier, RangeProvesMisalignment)
{
    ProgramBuilder pb("range-misaligned");
    const std::uint64_t buf = pb.allocData(64);
    pb.li(5, static_cast<std::int64_t>(buf));
    pb.alui(Opcode::Addi, 5, 5, 1); // second def: resolver gives up
    pb.load(Opcode::Ld, 6, 5, 2);   // buf + 3: inside data, misaligned
    pb.halt();
    const Report report = verify(pb.build());
    EXPECT_TRUE(report.has(Check::RangeProvenMisaligned))
        << report.toString();
    EXPECT_FALSE(report.has(Check::MisalignedAccess));
    EXPECT_TRUE(report.ok());
}

TEST(Verifier, EmptyInfiniteLoopSpinsDoingNothing)
{
    ProgramBuilder pb("spin");
    pb.li(5, 0);
    Label top = pb.newLabel();
    pb.bind(top);
    pb.alui(Opcode::Addi, 5, 5, 1);
    pb.jump(top);
    Options allow;
    allow.allow_nonterminating = true;
    const Report report = verify(pb.build(), allow);
    EXPECT_TRUE(report.has(Check::EmptyInfiniteLoop)) << report.toString();
    EXPECT_TRUE(report.ok()); // a warning even when nontermination is fine
    // The same loop is also a hard error under the default options.
    EXPECT_TRUE(verify(pb.build()).has(Check::InfiniteLoop));

    // A loop doing memory work is not "empty" even without an exit.
    ProgramBuilder busy("busy");
    const std::uint64_t buf = busy.allocData(64);
    busy.li(5, static_cast<std::int64_t>(buf));
    Label t2 = busy.newLabel();
    busy.bind(t2);
    busy.load(Opcode::Ld, 6, 5, 0);
    busy.jump(t2);
    EXPECT_FALSE(verify(busy.build(), allow).has(Check::EmptyInfiniteLoop));
}

TEST(Verifier, DiagnosticsCarryStableBlockIds)
{
    // Blocks are numbered in program order, so the ids are stable across
    // runs and usable as machine-readable anchors (mica_lint --json).
    ProgramBuilder pb("blocks");
    pb.li(5, 1);
    Label top = pb.newLabel();
    pb.bind(top);
    pb.alui(Opcode::Addi, 5, 5, -1);
    pb.branch(Opcode::Bne, 5, isa::kRegZero, top);
    pb.ret(); // error at instr 3 = block 2, offset 0
    const Report report = verify(pb.build());
    bool found = false;
    for (const analysis::Diagnostic &d : report.diagnostics)
        if (d.check == Check::ReturnWithoutLink) {
            EXPECT_EQ(d.instr_index, 3u);
            EXPECT_EQ(d.block, 2u);
            EXPECT_EQ(d.block_offset, 0u);
            found = true;
        }
    EXPECT_TRUE(found) << report.toString();
}

TEST(Verifier, EveryCheckHasAName)
{
    for (std::size_t c = 0; c < analysis::kNumChecks; ++c)
        EXPECT_NE(analysis::checkName(static_cast<Check>(c)), "unknown");
    EXPECT_EQ(analysis::kNumChecks, 20u);
}

/** Acceptance criterion: every registered suite program verifies clean. */
TEST(Verifier, AllCatalogProgramsVerifyWithZeroErrors)
{
    Options options;
    options.allow_nonterminating = true; // workloads loop by design
    const workloads::SuiteCatalog catalog;
    for (const auto &bench : catalog.benchmarks()) {
        for (std::uint32_t input = 0; input < bench.num_inputs; ++input) {
            const isa::Program program = bench.build(input);
            const Report report = verify(program, options);
            EXPECT_EQ(report.errorCount(), 0u)
                << bench.id() << " input " << input << ":\n"
                << report.toString();
            EXPECT_EQ(report.warningCount(), 0u)
                << bench.id() << " input " << input << ":\n"
                << report.toString();
        }
    }
}

} // namespace
