/**
 * @file
 * Tests for the clustering persistence used by the analysis cache.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/phase_analysis.hh"
#include "stats/rng.hh"

namespace {

using namespace mica;
using stats::KMeansResult;

KMeansResult
sampleClustering()
{
    KMeansResult res;
    res.centers = stats::Matrix::fromRows({{1.5, -2.25}, {0.0, 4.125}});
    res.assignment = {0, 1, 1, 0, 1};
    res.sizes = {2, 3};
    res.inertia = 3.75;
    res.bic = -12.5;
    res.iterations = 9;
    return res;
}

TEST(ClusteringCache, SaveLoadRoundTrip)
{
    const std::string path = "/tmp/micaphase_clustering_test.csv";
    const auto original = sampleClustering();
    core::saveClustering(path, original);

    KMeansResult loaded;
    ASSERT_TRUE(core::loadClustering(path, loaded));
    EXPECT_EQ(loaded.assignment, original.assignment);
    EXPECT_EQ(loaded.sizes, original.sizes);
    EXPECT_DOUBLE_EQ(loaded.inertia, original.inertia);
    EXPECT_DOUBLE_EQ(loaded.bic, original.bic);
    EXPECT_EQ(loaded.iterations, original.iterations);
    EXPECT_EQ(loaded.centers.maxAbsDiff(original.centers), 0.0);
    std::remove(path.c_str());
}

TEST(ClusteringCache, LoadMissingFails)
{
    KMeansResult out;
    EXPECT_FALSE(core::loadClustering("/tmp/nope_micaphase.csv", out));
}

TEST(ClusteringCache, LoadRejectsTruncatedFile)
{
    const std::string path = "/tmp/micaphase_clustering_trunc.csv";
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        std::fputs("2,2,5,1.0,2.0,3\n0.0,0.0\n", f); // missing rows
        std::fclose(f);
    }
    KMeansResult out;
    EXPECT_FALSE(core::loadClustering(path, out));
    std::remove(path.c_str());
}

TEST(ClusteringCache, SaveIsAtomicAndFooterTerminated)
{
    const std::string path = "/tmp/micaphase_clustering_atomic.csv";
    core::saveClustering(path, sampleClustering());

    // No temporary sibling may survive a successful save.
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

    // The last non-empty line must be the verified row-count footer.
    std::ifstream in(path);
    std::string line, last;
    while (std::getline(in, line))
        if (!line.empty())
            last = line;
    EXPECT_EQ(last, "#rows,5");
    std::remove(path.c_str());
}

TEST(ClusteringCache, LoadRejectsTornFileWithoutFooter)
{
    // A byte-torn copy of a valid file — complete header, centers and
    // assignment row, but the footer never made it — must be a miss, not
    // partial clusters (this is the pre-footer on-disk format too).
    const std::string good = "/tmp/micaphase_clustering_full.csv";
    const std::string torn = "/tmp/micaphase_clustering_torn.csv";
    core::saveClustering(good, sampleClustering());
    {
        std::ifstream in(good);
        std::ostringstream all;
        all << in.rdbuf();
        const std::string text = all.str();
        const std::size_t footer = text.rfind("#rows,");
        ASSERT_NE(footer, std::string::npos);
        std::ofstream out(torn);
        out << text.substr(0, footer);
    }
    KMeansResult out;
    EXPECT_FALSE(core::loadClustering(torn, out));
    std::remove(good.c_str());
    std::remove(torn.c_str());
}

TEST(ClusteringCache, LoadRejectsFooterRowMismatch)
{
    const std::string path = "/tmp/micaphase_clustering_badfooter.csv";
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        std::fputs("2,1,3,1.0,2.0,3\n0.0\n1.0\n0,1,1\n#rows,4\n", f);
        std::fclose(f);
    }
    KMeansResult out;
    EXPECT_FALSE(core::loadClustering(path, out));
    std::remove(path.c_str());
}

TEST(ClusteringCache, LoadRejectsTrailingJunkAfterFooter)
{
    const std::string path = "/tmp/micaphase_clustering_junk.csv";
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        std::fputs("2,1,3,1.0,2.0,3\n0.0\n1.0\n0,1,1\n#rows,3\n0,0,0\n",
                   f);
        std::fclose(f);
    }
    KMeansResult out;
    EXPECT_FALSE(core::loadClustering(path, out));
    std::remove(path.c_str());
}

TEST(ClusteringCache, LoadRejectsBadAssignment)
{
    const std::string path = "/tmp/micaphase_clustering_bad.csv";
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        // Assignment index 7 >= k = 2.
        std::fputs("2,1,3,1.0,2.0,3\n0.0\n1.0\n0,7,1\n", f);
        std::fclose(f);
    }
    KMeansResult out;
    EXPECT_FALSE(core::loadClustering(path, out));
    std::remove(path.c_str());
}

TEST(ClusteringCache, AnalysisKeySensitivity)
{
    core::ExperimentConfig a;
    core::ExperimentConfig b = a;
    EXPECT_EQ(a.analysisKey(), b.analysisKey());
    b.kmeans_k = a.kmeans_k + 1;
    EXPECT_NE(a.analysisKey(), b.analysisKey());
    b = a;
    b.seed ^= 1;
    EXPECT_NE(a.analysisKey(), b.analysisKey());
    b = a;
    b.samples_per_benchmark += 1;
    EXPECT_NE(a.analysisKey(), b.analysisKey());
    b = a;
    b.interval_instructions += 1; // flows in via characterizationKey
    EXPECT_NE(a.analysisKey(), b.analysisKey());
}

TEST(ClusteringCache, WithClusteringRejectsSizeMismatch)
{
    core::CharacterizationResult chars;
    chars.benchmark_ids = {"S/x"};
    chars.benchmark_names = {"x"};
    chars.benchmark_suites = {"S"};

    core::SampledDataset sampled;
    for (int i = 0; i < 4; ++i) {
        std::vector<double> row(metrics::kNumCharacteristics,
                                static_cast<double>(i));
        sampled.data.appendRow(row);
        sampled.benchmark_of_row.push_back(0);
        sampled.source_interval.push_back(0);
    }

    auto clustering = sampleClustering(); // 5 assignments != 4 rows
    core::ExperimentConfig cfg;
    EXPECT_THROW((void)core::analyzePhasesWithClustering(
                     sampled, chars, cfg, clustering),
                 std::invalid_argument);
}

TEST(ClusteringCache, WithClusteringMatchesDirectAnalysis)
{
    // Feeding analyzePhases' own clustering back through the cached path
    // must reproduce the identical summary.
    core::CharacterizationResult chars;
    chars.benchmark_ids = {"S/x", "S/y"};
    chars.benchmark_names = {"x", "y"};
    chars.benchmark_suites = {"S", "S"};

    stats::Rng rng(5);
    core::SampledDataset sampled;
    for (int i = 0; i < 30; ++i) {
        std::vector<double> row(metrics::kNumCharacteristics, 0.0);
        row[0] = (i % 2) * 10.0 + 0.01 * rng.nextGaussian();
        row[1] = rng.nextGaussian();
        sampled.data.appendRow(row);
        sampled.benchmark_of_row.push_back(i % 2);
        sampled.source_interval.push_back(0);
    }
    core::ExperimentConfig cfg;
    cfg.kmeans_k = 2;
    cfg.num_prominent = 2;

    const auto direct = core::analyzePhases(sampled, chars, cfg);
    const auto cached = core::analyzePhasesWithClustering(
        sampled, chars, cfg, direct.clustering);
    ASSERT_EQ(cached.clusters.size(), direct.clusters.size());
    for (std::size_t i = 0; i < cached.clusters.size(); ++i) {
        EXPECT_EQ(cached.clusters[i].cluster, direct.clusters[i].cluster);
        EXPECT_EQ(cached.clusters[i].weight, direct.clusters[i].weight);
        EXPECT_EQ(cached.clusters[i].representative_row,
                  direct.clusters[i].representative_row);
        EXPECT_EQ(cached.clusters[i].kind, direct.clusters[i].kind);
    }
}

} // namespace
