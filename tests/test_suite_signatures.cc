/**
 * @file
 * Guard tests for the catalog's design intentions: each suite's hallmark
 * benchmarks must exhibit the behavioural signature they were built to
 * have (DESIGN.md section 3, paper section 4). These tests protect the
 * figure shapes from accidental catalog regressions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/characterize.hh"
#include "workloads/workload.hh"

namespace {

using namespace mica;
namespace m = metrics::midx;

const workloads::SuiteCatalog &
catalog()
{
    static const workloads::SuiteCatalog instance;
    return instance;
}

/** Mean characteristic vector over a short run of a benchmark. */
metrics::CharacteristicVector
profileOf(const char *id, std::uint32_t input = 0)
{
    const auto *bench = catalog().find(id);
    if (!bench)
        throw std::runtime_error(std::string("missing ") + id);
    const auto intervals =
        core::characterizeProgram(bench->build(input), 25000, 8);
    metrics::CharacteristicVector mean{};
    for (const auto &v : intervals)
        for (std::size_t c = 0; c < metrics::kNumCharacteristics; ++c)
            mean[c] += v[c] / static_cast<double>(intervals.size());
    return mean;
}

TEST(SuiteSignature, McfIsLoadDominatedWithLowIlp)
{
    const auto mcf = profileOf("SPECint2006/mcf");
    const auto lbm = profileOf("SPECfp2006/lbm");
    EXPECT_GT(mcf[m::MixMemRead], 0.25);
    EXPECT_LT(mcf[m::Ilp256], lbm[m::Ilp256])
        << "pointer chasing must cap ILP below streaming";
}

TEST(SuiteSignature, LbmIsFpStreaming)
{
    const auto lbm = profileOf("SPECfp2006/lbm");
    EXPECT_GT(lbm[m::MixFpArith] + lbm[m::MixFpMul], 0.1);
    EXPECT_GT(lbm[m::MixMemRead], 0.15);
    // stride 4 elements x unroll 4 = 128-byte static strides: inside the
    // <=512 cumulative bucket, outside <=64.
    EXPECT_GT(lbm[m::LocalLoadStride512], 0.8);
    EXPECT_LT(lbm[m::LocalLoadStride64], 0.2);
}

TEST(SuiteSignature, GccHasLargestInstructionFootprint)
{
    const auto gcc = profileOf("SPECint2006/gcc");
    const auto mcf = profileOf("SPECint2006/mcf");
    const auto lbm = profileOf("SPECfp2006/lbm");
    EXPECT_GT(gcc[m::InstrFootprint64B],
              3.0 * mcf[m::InstrFootprint64B]);
    EXPECT_GT(gcc[m::InstrFootprint64B],
              3.0 * lbm[m::InstrFootprint64B]);
    EXPECT_GT(gcc[m::MixCall], 0.005);
}

TEST(SuiteSignature, GrappaMatchesThePaperDescription)
{
    // Paper section 4.2: "most of Grappa's execution exhibits a large
    // number of [arithmetic] operations along with a large number of
    // global small-distance strides".
    const auto *bench = catalog().find("BioPerf/grappa");
    ASSERT_NE(bench, nullptr);
    const auto intervals =
        core::characterizeProgram(bench->build(0), 25000, 24);
    double arith = 0.0, small_global = 0.0;
    for (const auto &v : intervals) {
        arith = std::max(arith, v[m::MixIntArith] + v[m::MixIntMul] +
                                    v[m::MixIntLogic] + v[m::MixIntShift]);
        small_global = std::max(small_global, v[m::GlobalLoadStride64]);
        EXPECT_LT(v[m::MixFpArith] + v[m::MixFpMul], 0.01);
    }
    EXPECT_GT(arith, 0.5) << "integer-operation-dense phase missing";
    EXPECT_GT(small_global, 0.9)
        << "global small-distance stride phase missing";
}

TEST(SuiteSignature, SjengBranchesAreHistoryPredictable)
{
    // sjeng uses a pseudo-random period-512 pattern: long history can
    // pin the position in the period, 4 bits cannot.
    const auto sjeng = profileOf("SPECint2006/sjeng");
    EXPECT_GT(sjeng[m::PpmGag4], sjeng[m::PpmGag12] + 0.02);
}

TEST(SuiteSignature, GobmkBranchesAreErratic)
{
    const auto gobmk = profileOf("SPECint2006/gobmk");
    const auto h264 = profileOf("SPECint2006/h264ref");
    EXPECT_GT(gobmk[m::PpmGag12], h264[m::PpmGag12] + 0.05)
        << "search branches vs regular codec loops";
}

TEST(SuiteSignature, VideoCodecsShareTheSadSignature)
{
    // The MediaBench codecs and SPEC's h264ref run the same SAD kernel
    // parameters; their aggregate vectors must be close in the plain
    // characteristic space (this is what drives their low uniqueness).
    const auto h264ref = profileOf("SPECint2006/h264ref");
    const auto mpeg2 = profileOf("MediaBenchII/mpeg2enc");
    double dist = 0.0;
    int counted = 0;
    for (std::size_t c = 0; c < 20; ++c) { // instruction-mix block
        dist += std::fabs(h264ref[c] - mpeg2[c]);
        ++counted;
    }
    EXPECT_LT(dist / counted, 0.05)
        << "codec instruction mixes diverged";
}

TEST(SuiteSignature, BmwFaceMatchesFacerec)
{
    const auto face = profileOf("BMW/face");
    const auto facerec = profileOf("SPECfp2000/facerec");
    // Both are convolution-led fp pipelines.
    EXPECT_GT(face[m::MixFpArith] + face[m::MixFpMul], 0.1);
    EXPECT_GT(facerec[m::MixFpArith] + facerec[m::MixFpMul], 0.1);
}

TEST(SuiteSignature, SixtrackHasLowIlpFpChains)
{
    const auto sixtrack = profileOf("SPECfp2000/sixtrack");
    const auto bwaves = profileOf("SPECfp2006/bwaves");
    EXPECT_LT(sixtrack[m::Ilp256], bwaves[m::Ilp256])
        << "serial recurrences vs parallel stencils";
}

TEST(SuiteSignature, LibquantumHasStridedIntStreams)
{
    const auto lq = profileOf("SPECint2006/libquantum");
    EXPECT_LT(lq[m::MixFpArith], 0.01);
    EXPECT_GT(lq[m::MixMemRead], 0.1);
    // stride-8 elements = 64-byte local strides: inside <=64 cumulative
    // bucket but outside <=8.
    EXPECT_GT(lq[m::LocalLoadStride512], 0.9);
}

TEST(SuiteSignature, PovrayUsesFpDivideAndSqrt)
{
    const auto povray = profileOf("SPECfp2006/povray");
    EXPECT_GT(povray[m::MixFpDiv], 0.005);
    EXPECT_GT(povray[m::MixFpSqrt], 0.005);
}

TEST(SuiteSignature, AstarInputsScaleItsFootprint)
{
    // Input 1 doubles the open-list node count; the chase phase of the
    // larger input must touch more pages in its heaviest interval. Use
    // enough intervals to cover the whole phase schedule.
    const auto *bench = catalog().find("SPECint2006/astar");
    ASSERT_NE(bench, nullptr);
    auto max_pages = [&](std::uint32_t input) {
        const auto intervals =
            core::characterizeProgram(bench->build(input), 25000, 40);
        double pages = 0.0;
        for (const auto &v : intervals)
            pages = std::max(pages, v[m::DataFootprint4K]);
        return pages;
    };
    EXPECT_GT(max_pages(1), max_pages(0) * 1.4);
}

TEST(SuiteSignature, FastaIsDnaScanning)
{
    const auto fasta = profileOf("BioPerf/fasta");
    // Byte loads with unit strides and branchy inner loops.
    EXPECT_GT(fasta[m::MixCondBranch], 0.15);
    EXPECT_GT(fasta[m::LocalLoadStride8], 0.5);
}

} // namespace
