/**
 * @file
 * Serving-path hardening: bitwise parity of the batched projection kernel
 * against the row-at-a-time oracle across thread counts, block sizes and
 * load paths (copying loader, packed mmap view, aligned mmap view), plus a
 * multi-threaded soak in which many threads hammer placeBatch and
 * assessWorkload on ONE shared model and ONE shared view concurrently and
 * every result is cross-checked bitwise against a serially precomputed
 * oracle. The suite names contain "Serve" on purpose: the thread-sanitizer
 * CI job selects them by that name.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "model/model_view.hh"
#include "model/phase_model.hh"
#include "stats/rng.hh"

namespace {

using namespace mica;
using model::ClusterKind;
using model::PhaseModel;
using model::PhaseModelView;
using model::Projection;
using model::WorkloadAssessment;

/**
 * A deterministic mid-sized synthetic model: p = 12 inputs, m = 4 retained
 * components, k = 16 clusters, 3 training suites. Shapes are chosen to
 * exercise the degenerate guards (one zero stddev column, one zero rescale
 * sd, exact zeros sprinkled into the loadings) while passing validate().
 */
PhaseModel
soakModel()
{
    constexpr std::size_t p = 12, m = 4, k = 16;
    stats::Rng rng(0x50a7);
    PhaseModel model;
    model.analysis_key = 0xfeedULL;
    model.interval_instructions = 1000;
    model.samples_per_benchmark = 8;
    model.interval_scale = 0.1;
    model.pca_min_stddev = 1.0;
    model.seed = 7;
    model.benchmark_ids = {"A/a1", "A/a2", "B/b1", "B/b2", "C/c1", "C/c2"};
    model.benchmark_suites = {"A", "A", "B", "B", "C", "C"};
    model.suites = {"A", "B", "C"};
    model.normalize_input = true;
    for (std::size_t c = 0; c < p; ++c) {
        model.norm_mean.push_back(rng.uniform(-2.0, 2.0));
        model.norm_stddev.push_back(rng.uniform(0.5, 3.0));
    }
    model.norm_stddev[5] = 0.0; // degenerate column
    model.pca_explained = 0.9;
    for (std::size_t i = 0; i < p; ++i)
        model.eigenvalues.push_back(
            static_cast<double>(p - i) + rng.nextDouble());
    model.loadings = stats::Matrix(p, m);
    for (std::size_t r = 0; r < p; ++r)
        for (std::size_t c = 0; c < m; ++c)
            model.loadings(r, c) =
                rng.nextBool(0.2) ? 0.0 : rng.nextGaussian();
    for (std::size_t c = 0; c < m; ++c)
        model.rescale_sd.push_back(rng.uniform(0.5, 2.0));
    model.rescale_sd[3] = 0.0; // degenerate component
    model.centers = stats::Matrix(k, m);
    for (std::size_t r = 0; r < k; ++r)
        for (std::size_t c = 0; c < m; ++c)
            model.centers(r, c) = rng.nextGaussian() * 2.0;
    std::uint64_t total = 0;
    for (std::size_t c = 0; c < k; ++c) {
        model.cluster_sizes.push_back(3 + rng.nextBelow(9));
        total += model.cluster_sizes.back();
        model.cluster_kinds.push_back(static_cast<ClusterKind>(c % 3));
        for (std::size_t s = 0; s < 3; ++s)
            model.suite_rows.push_back(rng.nextBelow(5));
    }
    model.training_rows = total;
    model.prominent_raw = stats::Matrix(6, p);
    for (std::size_t i = 0; i < 6; ++i) {
        model.prominent.push_back(
            {static_cast<std::uint32_t>(i * 2), 1.0 / 6.0,
             rng.nextBelow(total)});
        for (std::size_t c = 0; c < p; ++c)
            model.prominent_raw(i, c) = rng.nextGaussian();
    }
    model.key_characteristics = {0, 3, 7};
    model.ga_fitness = 0.5;
    model.validate();
    return model;
}

/** n synthetic p-column interval rows around the model's training stats. */
stats::Matrix
soakRows(const PhaseModel &model, std::size_t n, std::uint64_t seed)
{
    stats::Rng rng(seed);
    const std::size_t p = model.columns();
    stats::Matrix rows(n, p);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < p; ++c)
            rows(r, c) = model.norm_mean[c] +
                         (model.norm_stddev[c] + 0.25) * rng.nextGaussian();
    return rows;
}

/** Bitwise equality of two projections (reduced, assignment, dist2). */
bool
identical(const Projection &a, const Projection &b)
{
    if (a.assignment != b.assignment)
        return false;
    if (a.reduced.rows() != b.reduced.rows() ||
        a.reduced.cols() != b.reduced.cols() ||
        a.dist2.size() != b.dist2.size())
        return false;
    if (!a.reduced.data().empty() &&
        std::memcmp(a.reduced.data().data(), b.reduced.data().data(),
                    a.reduced.data().size() * sizeof(double)) != 0)
        return false;
    return a.dist2.empty() ||
           std::memcmp(a.dist2.data(), b.dist2.data(),
                       a.dist2.size() * sizeof(double)) == 0;
}

/** The slice [begin, begin+len) of `rows` as an owned matrix. */
stats::Matrix
slice(const stats::Matrix &rows, std::size_t begin, std::size_t len)
{
    stats::Matrix out(0, 0);
    for (std::size_t r = 0; r < len; ++r)
        out.appendRow(rows.row(begin + r));
    return out;
}

/** The slice [begin, begin+len) of a full-set oracle projection. */
Projection
sliceProjection(const Projection &full, std::size_t begin, std::size_t len)
{
    Projection out;
    out.reduced = stats::Matrix(0, 0);
    for (std::size_t r = 0; r < len; ++r)
        out.reduced.appendRow(full.reduced.row(begin + r));
    out.assignment.assign(full.assignment.begin() +
                              static_cast<std::ptrdiff_t>(begin),
                          full.assignment.begin() +
                              static_cast<std::ptrdiff_t>(begin + len));
    out.dist2.assign(full.dist2.begin() +
                         static_cast<std::ptrdiff_t>(begin),
                     full.dist2.begin() +
                         static_cast<std::ptrdiff_t>(begin + len));
    return out;
}

bool
sameAssessment(const WorkloadAssessment &a, const WorkloadAssessment &b)
{
    return a.rows == b.rows && a.clusters_covered == b.clusters_covered &&
           a.coverage_fraction == b.coverage_fraction &&
           a.cumulative == b.cumulative &&
           a.exclusive_fraction == b.exclusive_fraction &&
           a.shared_fraction == b.shared_fraction &&
           a.novel_fraction == b.novel_fraction &&
           a.mean_distance == b.mean_distance &&
           a.max_distance == b.max_distance;
}

TEST(ServeParity, BatchedMatchesRowOracleAcrossThreadsAndBlocks)
{
    const PhaseModel model = soakModel();
    const stats::Matrix rows = soakRows(model, 3000, 0xabc1);
    const Projection oracle = model.projectBenchmark(rows);

    for (const unsigned threads : {1u, 2u, 4u}) {
        for (const std::size_t block : {std::size_t{7}, std::size_t{64},
                                        std::size_t{1024}}) {
            SCOPED_TRACE("threads=" + std::to_string(threads) +
                         " block_rows=" + std::to_string(block));
            stats::ProjectOptions opts;
            opts.threads = threads;
            opts.block_rows = block;
            EXPECT_TRUE(identical(model.placeBatch(rows, opts), oracle));
        }
    }

    // Spot-check the third path: single-interval placement.
    for (std::size_t r = 0; r < rows.rows(); r += 233) {
        const auto one = model.projectInterval(rows.row(r));
        EXPECT_EQ(one.cluster, oracle.assignment[r]);
        EXPECT_EQ(one.dist2, oracle.dist2[r]);
    }
}

TEST(ServeParity, ViewMatchesCopyLoaderOnBothLayouts)
{
    const PhaseModel built = soakModel();
    const stats::Matrix rows = soakRows(built, 1000, 0xabc2);

    const std::string packed = "/tmp/micaphase_serve_packed.bin";
    const std::string aligned = "/tmp/micaphase_serve_aligned.bin";
    built.save(packed);
    built.save(aligned, model::SaveOptions{.align_sections = true});

    const PhaseModel loaded = PhaseModel::load(packed);
    const Projection oracle = loaded.projectBenchmark(rows);

    for (const std::string &path : {packed, aligned}) {
        SCOPED_TRACE(path);
        const PhaseModelView view = PhaseModelView::open(path);
        EXPECT_EQ(view.columns(), loaded.columns());
        EXPECT_EQ(view.numClusters(), loaded.numClusters());
        stats::ProjectOptions opts;
        opts.threads = 3;
        opts.block_rows = 17;
        EXPECT_TRUE(identical(view.placeBatch(rows, opts), oracle));
    }

    // An aligned save must actually enable zero-copy on little-endian
    // hosts (every matrix payload lands 8-byte aligned in the file).
    if (std::endian::native == std::endian::little) {
        EXPECT_TRUE(PhaseModelView::open(aligned).zeroCopy());
    }

    std::remove(packed.c_str());
    std::remove(aligned.c_str());
}

TEST(ServeSoak, ConcurrentBatchesMatchSerialOracleBitwise)
{
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kIters = 40;
    constexpr std::size_t kRows = 2000;

    const PhaseModel model = soakModel();
    const stats::Matrix rows = soakRows(model, kRows, 0xabc3);
    const Projection oracle = model.projectBenchmark(rows);

    const std::string path = "/tmp/micaphase_serve_soak.bin";
    model.save(path, model::SaveOptions{.align_sections = true});
    const PhaseModelView view = PhaseModelView::open(path);
    std::remove(path.c_str());

    // Deterministic per-(thread, iteration) slice of the shared rows.
    constexpr std::size_t kLens[] = {64, 256, 1024};
    auto sliceBegin = [](std::size_t t, std::size_t i, std::size_t len) {
        return (t * 37 + i * 101) % (kRows - len);
    };

    // Precompute every expected slice projection + assessment serially;
    // the threads below must reproduce them bit for bit.
    std::vector<std::vector<Projection>> want_proj(kThreads);
    std::vector<std::vector<WorkloadAssessment>> want_assess(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        for (std::size_t i = 0; i < kIters; ++i) {
            const std::size_t len = kLens[(t + i) % 3];
            Projection p = sliceProjection(
                oracle, sliceBegin(t, i, len), len);
            want_assess[t].push_back(model.assessWorkload(p));
            want_proj[t].push_back(std::move(p));
        }
    }

    // Soak: every thread hammers BOTH the shared copying model and the
    // shared mmap view (placeBatch + assessWorkload are const and must be
    // safe to call concurrently on one instance).
    std::vector<std::size_t> mismatches(kThreads, 0);
    {
        std::vector<std::thread> pool;
        for (std::size_t t = 0; t < kThreads; ++t) {
            pool.emplace_back([&, t] {
                for (std::size_t i = 0; i < kIters; ++i) {
                    const std::size_t len = kLens[(t + i) % 3];
                    const stats::Matrix part =
                        slice(rows, sliceBegin(t, i, len), len);
                    stats::ProjectOptions opts;
                    opts.threads = 1 + static_cast<unsigned>((t + i) % 2);
                    opts.block_rows = 50;
                    const Projection got =
                        (t + i) % 2 == 0 ? model.placeBatch(part, opts)
                                         : view.placeBatch(part, opts);
                    const WorkloadAssessment assess =
                        (t + i) % 2 == 0 ? model.assessWorkload(got)
                                         : view.assessWorkload(got);
                    if (!identical(got, want_proj[t][i]) ||
                        !sameAssessment(assess, want_assess[t][i]))
                        mismatches[t] += 1;
                }
            });
        }
        for (std::thread &th : pool)
            th.join();
    }
    for (std::size_t t = 0; t < kThreads; ++t)
        EXPECT_EQ(mismatches[t], 0u) << "thread " << t;
}

} // namespace
