/**
 * @file
 * Tests for the coverage / diversity / uniqueness math (Figures 4-6),
 * validated against a hand-computed clustering.
 */

#include <gtest/gtest.h>

#include "core/suite_comparison.hh"

namespace {

using namespace mica;
using core::CharacterizationResult;
using core::PhaseAnalysis;
using core::SampledDataset;

/**
 * Hand-built scenario with 4 clusters and two suites:
 *
 *   cluster 0: 4 rows of suite X (benchmark 0)      -> exclusive to X
 *   cluster 1: 2 rows X (bench 1) + 2 rows Y (b2)   -> shared
 *   cluster 2: 2 rows of suite Y (benchmark 2)      -> exclusive to Y
 *   cluster 3: 2 rows of suite Y (benchmark 3)      -> exclusive to Y
 *
 * Suite X: 6 rows, suite Y: 6 rows.
 *   coverage:  X touches clusters {0,1} = 2; Y touches {1,2,3} = 3.
 *   unique:    X: 4/6; Y: 4/6.
 *   cumulative X: 4/6, 6/6, ...; Y: shares 2/6,2/6,2/6 -> 1/3, 2/3, 1.
 */
struct Fixture
{
    CharacterizationResult chars;
    SampledDataset sampled;
    PhaseAnalysis analysis;

    Fixture()
    {
        const char *suites[] = {"X", "X", "Y", "Y"};
        for (std::uint32_t b = 0; b < 4; ++b) {
            chars.benchmark_ids.push_back(std::string(suites[b]) + "/b" +
                                          std::to_string(b));
            chars.benchmark_names.push_back("b" + std::to_string(b));
            chars.benchmark_suites.push_back(suites[b]);
        }

        const std::uint32_t bench_per_row[] = {0, 0, 0, 0, 1, 1, 2, 2,
                                               2, 2, 3, 3};
        const std::size_t cluster_per_row[] = {0, 0, 0, 0, 1, 1, 1, 1,
                                               2, 2, 3, 3};
        for (std::size_t i = 0; i < 12; ++i) {
            std::vector<double> row(metrics::kNumCharacteristics, 0.0);
            row[0] = static_cast<double>(cluster_per_row[i]);
            sampled.data.appendRow(row);
            sampled.benchmark_of_row.push_back(bench_per_row[i]);
            sampled.source_interval.push_back(0);
            analysis.clustering.assignment.push_back(cluster_per_row[i]);
        }
        analysis.clustering.centers = stats::Matrix(4, 1);
        analysis.clustering.sizes = {4, 4, 2, 2};
    }
};

TEST(SuiteComparison, SuitesListedInDataOrder)
{
    Fixture fix;
    const auto cmp =
        core::compareSuites(fix.chars, fix.sampled, fix.analysis);
    ASSERT_EQ(cmp.suites.size(), 2u);
    EXPECT_EQ(cmp.suites[0], "X");
    EXPECT_EQ(cmp.suites[1], "Y");
}

TEST(SuiteComparison, CoverageCountsTouchedClusters)
{
    Fixture fix;
    const auto cmp =
        core::compareSuites(fix.chars, fix.sampled, fix.analysis);
    EXPECT_EQ(cmp.coverage[cmp.indexOf("X")], 2u);
    EXPECT_EQ(cmp.coverage[cmp.indexOf("Y")], 3u);
}

TEST(SuiteComparison, UniquenessFractions)
{
    Fixture fix;
    const auto cmp =
        core::compareSuites(fix.chars, fix.sampled, fix.analysis);
    EXPECT_NEAR(cmp.uniqueness[cmp.indexOf("X")], 4.0 / 6.0, 1e-12);
    EXPECT_NEAR(cmp.uniqueness[cmp.indexOf("Y")], 4.0 / 6.0, 1e-12);
}

TEST(SuiteComparison, CumulativeCurves)
{
    Fixture fix;
    const auto cmp =
        core::compareSuites(fix.chars, fix.sampled, fix.analysis);
    const auto &x = cmp.cumulative[cmp.indexOf("X")];
    ASSERT_EQ(x.size(), 4u);
    EXPECT_NEAR(x[0], 4.0 / 6.0, 1e-12);
    EXPECT_NEAR(x[1], 1.0, 1e-12);
    EXPECT_NEAR(x[3], 1.0, 1e-12);

    const auto &y = cmp.cumulative[cmp.indexOf("Y")];
    EXPECT_NEAR(y[0], 2.0 / 6.0, 1e-12);
    EXPECT_NEAR(y[1], 4.0 / 6.0, 1e-12);
    EXPECT_NEAR(y[2], 1.0, 1e-12);
}

TEST(SuiteComparison, CurvesAreMonotone)
{
    Fixture fix;
    const auto cmp =
        core::compareSuites(fix.chars, fix.sampled, fix.analysis);
    for (const auto &curve : cmp.cumulative)
        for (std::size_t i = 0; i + 1 < curve.size(); ++i)
            EXPECT_LE(curve[i], curve[i + 1] + 1e-12);
}

TEST(SuiteComparison, ClustersToCover)
{
    Fixture fix;
    const auto cmp =
        core::compareSuites(fix.chars, fix.sampled, fix.analysis);
    EXPECT_EQ(cmp.clustersToCover(cmp.indexOf("X"), 0.5), 1u);
    EXPECT_EQ(cmp.clustersToCover(cmp.indexOf("X"), 0.9), 2u);
    EXPECT_EQ(cmp.clustersToCover(cmp.indexOf("Y"), 0.9), 3u);
}

TEST(SuiteComparison, IndexOfUnknownThrows)
{
    Fixture fix;
    const auto cmp =
        core::compareSuites(fix.chars, fix.sampled, fix.analysis);
    EXPECT_THROW((void)cmp.indexOf("Nope"), std::out_of_range);
}

TEST(SuiteComparison, SingleSuiteIsFullyUnique)
{
    Fixture fix;
    // Relabel everything as one suite.
    for (auto &s : fix.chars.benchmark_suites)
        s = "X";
    const auto cmp =
        core::compareSuites(fix.chars, fix.sampled, fix.analysis);
    ASSERT_EQ(cmp.suites.size(), 1u);
    EXPECT_NEAR(cmp.uniqueness[0], 1.0, 1e-12);
    EXPECT_EQ(cmp.coverage[0], 4u);
}

} // namespace
