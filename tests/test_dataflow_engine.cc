/**
 * @file
 * Generic dataflow engine on adversarial CFGs: unreachable blocks,
 * irreducible control flow, self-loops and empty programs, plus the
 * convergence bound, the non-monotone hard cap, and equivalence of the
 * engine-hosted register analyses with a hand-rolled fixpoint.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "analysis/engine.hh"
#include "analysis/reaching_defs.hh"
#include "analysis/value_range.hh"
#include "workloads/program_builder.hh"

namespace {

using namespace mica;
using analysis::buildCfg;
using analysis::Cfg;
using analysis::Direction;
using analysis::RegMask;
using analysis::solveDataflow;
using isa::Opcode;
using workloads::Label;
using workloads::ProgramBuilder;

/** Forward reachability as a lattice-height-1 dataflow problem. */
struct ReachProblem
{
    using Value = char;
    static constexpr Direction kDirection = Direction::Forward;

    [[nodiscard]] Value identity() const { return 0; }
    [[nodiscard]] Value boundary() const { return 1; }
    void
    join(Value &into, const Value &from, std::size_t) const
    {
        into |= from;
    }
    [[nodiscard]] Value
    transfer(const Cfg &, std::size_t, const Value &in) const
    {
        return in;
    }
    [[nodiscard]] std::size_t latticeHeight() const { return 1; }
};

/** Possible-defs re-stated in the test, to cross-check the re-hosting. */
struct UnionDefsProblem
{
    using Value = RegMask;
    static constexpr Direction kDirection = Direction::Forward;

    [[nodiscard]] Value identity() const { return 0; }
    [[nodiscard]] Value boundary() const { return analysis::vmEntryDefs(); }
    void
    join(Value &into, const Value &from, std::size_t) const
    {
        into |= from;
    }
    [[nodiscard]] Value
    transfer(const Cfg &cfg, std::size_t block, const Value &in) const
    {
        Value v = in;
        for (std::size_t i = cfg.blocks[block].first;
             i <= cfg.blocks[block].last; ++i)
            v |= analysis::writeMask(cfg.program->code[i]);
        return v;
    }
    [[nodiscard]] std::size_t latticeHeight() const { return 64; }
};

/** Deliberately non-monotone: the output moves on every application. */
struct RunawayProblem
{
    using Value = std::size_t;
    static constexpr Direction kDirection = Direction::Forward;
    std::size_t ticks = 0;

    [[nodiscard]] Value identity() const { return 0; }
    [[nodiscard]] Value boundary() const { return 1; }
    void
    join(Value &into, const Value &from, std::size_t) const
    {
        into = std::max(into, from);
    }
    [[nodiscard]] Value
    transfer(const Cfg &, std::size_t, const Value &)
    {
        return ++ticks;
    }
    [[nodiscard]] std::size_t latticeHeight() const { return 1; }
};

/** li / loop-decrement / halt: a self-loop block with an exit. */
isa::Program
countdownProgram()
{
    ProgramBuilder pb("countdown");
    pb.li(5, 10);
    Label top = pb.newLabel();
    pb.bind(top);
    pb.alui(Opcode::Addi, 5, 5, -1);
    pb.branch(Opcode::Bne, 5, isa::kRegZero, top);
    pb.halt();
    return pb.build();
}

/** A jump skips one block, leaving it with no inbound edge. */
isa::Program
unreachableProgram()
{
    ProgramBuilder pb("dead");
    Label end = pb.newLabel();
    pb.jump(end);
    pb.li(5, 1);
    pb.li(6, 2);
    pb.bind(end);
    pb.halt();
    return pb.build();
}

/**
 * Irreducible control flow: a two-block cycle A <-> B entered at *both*
 * blocks (the entry branch targets B, the fallthrough enters A), so
 * neither block dominates the other and no natural loop covers the cycle.
 */
isa::Program
irreducibleProgram()
{
    ProgramBuilder pb("irreducible");
    Label a = pb.newLabel();
    Label b = pb.newLabel();
    pb.branch(Opcode::Bne, 5, isa::kRegZero, b);
    pb.bind(a);
    pb.alui(Opcode::Addi, 6, 6, 1);
    pb.bind(b);
    pb.alui(Opcode::Addi, 7, 7, 1);
    pb.jump(a);
    return pb.build();
}

TEST(Engine, ReachabilityMatchesCfgFlag)
{
    for (const isa::Program &program :
         {countdownProgram(), unreachableProgram(), irreducibleProgram()}) {
        const Cfg cfg = buildCfg(program);
        ReachProblem problem;
        const auto result = solveDataflow(cfg, problem);
        ASSERT_EQ(result.in.size(), cfg.blocks.size());
        for (std::size_t b = 0; b < cfg.blocks.size(); ++b)
            EXPECT_EQ(result.in[b] != 0, cfg.reachable[b])
                << program.name << " block " << b;
        EXPECT_TRUE(result.converged);
    }
}

TEST(Engine, EmptyProgramYieldsEmptyFixpoint)
{
    const isa::Program empty{};
    const Cfg cfg = buildCfg(empty);
    ReachProblem problem;
    const auto result = solveDataflow(cfg, problem);
    EXPECT_TRUE(result.in.empty());
    EXPECT_TRUE(result.out.empty());
    EXPECT_EQ(result.transfers, 0u);
    EXPECT_TRUE(result.converged);

    // The hosted analyses must equally tolerate the empty CFG.
    EXPECT_TRUE(analysis::computePossibleDefs(cfg).in.empty());
    EXPECT_TRUE(analysis::computeLiveness(cfg).in.empty());
    EXPECT_TRUE(analysis::computeValueRanges(cfg).in.empty());
    EXPECT_TRUE(analysis::computeReachingDefs(cfg).uses.empty());
}

TEST(Engine, ConvergenceBoundHolds)
{
    // The classic monotone-framework bound: at most height + 1 transfer
    // applications per block.
    for (const isa::Program &program :
         {countdownProgram(), unreachableProgram(), irreducibleProgram()}) {
        const Cfg cfg = buildCfg(program);
        UnionDefsProblem problem;
        const auto result = solveDataflow(cfg, problem);
        EXPECT_TRUE(result.converged);
        EXPECT_LE(result.transfers,
                  cfg.blocks.size() * (problem.latticeHeight() + 1))
            << program.name;
    }
}

TEST(Engine, RehostedPossibleDefsMatchesSpelledOutProblem)
{
    for (const isa::Program &program :
         {countdownProgram(), unreachableProgram(), irreducibleProgram()}) {
        const Cfg cfg = buildCfg(program);
        UnionDefsProblem problem;
        const auto expected = solveDataflow(cfg, problem);
        const analysis::PossibleDefs defs =
            analysis::computePossibleDefs(cfg);
        ASSERT_EQ(defs.in.size(), expected.in.size());
        for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
            EXPECT_EQ(defs.in[b], expected.in[b]) << program.name << " " << b;
            EXPECT_EQ(defs.out[b], expected.out[b])
                << program.name << " " << b;
        }
    }
}

TEST(Engine, NonMonotoneProblemHitsTheCapInsteadOfLooping)
{
    const isa::Program program = countdownProgram();
    const Cfg cfg = buildCfg(program);
    RunawayProblem problem;
    const auto result = solveDataflow(cfg, problem);
    EXPECT_FALSE(result.converged);
}

TEST(Engine, UnreachableBlockKeepsIdentityValue)
{
    const isa::Program program = unreachableProgram();
    const Cfg cfg = buildCfg(program);
    std::size_t dead = cfg.blocks.size();
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b)
        if (!cfg.reachable[b])
            dead = b;
    ASSERT_LT(dead, cfg.blocks.size());

    const analysis::PossibleDefs defs = analysis::computePossibleDefs(cfg);
    EXPECT_EQ(defs.in[dead], RegMask{0});
    EXPECT_EQ(defs.out[dead], RegMask{0});
    // The must-analysis clamps unreachable blocks to the empty set too
    // (its natural resting value would be "everything defined").
    const analysis::MustDefs must = analysis::computeMustDefs(cfg);
    EXPECT_EQ(must.in[dead], RegMask{0});
}

TEST(Engine, IrreducibleCycleConvergesToTheUnionOnBothBlocks)
{
    const isa::Program program = irreducibleProgram();
    const Cfg cfg = buildCfg(program);
    const analysis::PossibleDefs defs = analysis::computePossibleDefs(cfg);
    // Both cycle blocks see both definitions once the fixpoint settles,
    // regardless of which entry reached them first.
    const RegMask x6 = RegMask{1} << 6;
    const RegMask x7 = RegMask{1} << 7;
    const std::size_t a = cfg.block_of_instr[1];
    const std::size_t b = cfg.block_of_instr[2];
    EXPECT_NE(a, b);
    EXPECT_EQ(defs.out[a] & (x6 | x7), x6 | x7);
    EXPECT_EQ(defs.out[b] & (x6 | x7), x6 | x7);
}

TEST(Engine, BackwardLivenessOnSelfLoop)
{
    const isa::Program program = countdownProgram();
    const Cfg cfg = buildCfg(program);
    const analysis::Liveness live = analysis::computeLiveness(cfg);
    const RegMask x5 = RegMask{1} << 5;
    const std::size_t loop = cfg.block_of_instr[1];
    EXPECT_NE(live.in[loop] & x5, 0u);          // read by addi and bne
    const std::size_t halt = cfg.block_of_instr[3];
    EXPECT_EQ(live.in[halt] & x5, 0u);          // never read again
}

TEST(Engine, ReachingDefsChainsThroughTheLoop)
{
    const isa::Program program = countdownProgram();
    const Cfg cfg = buildCfg(program);
    const analysis::ReachingDefs rdefs = analysis::computeReachingDefs(cfg);

    // The decrement (instr 1) reads x5; both the li (instr 0) and its own
    // previous iteration may supply the value.
    const analysis::UseSite *use = nullptr;
    for (const analysis::UseSite &u : rdefs.uses)
        if (u.instr == 1 && u.reg.index == 5)
            use = &u;
    ASSERT_NE(use, nullptr);
    std::vector<std::size_t> producers;
    for (std::size_t d : use->defs)
        producers.push_back(rdefs.defs[d].instr);
    EXPECT_NE(std::find(producers.begin(), producers.end(), 0u),
              producers.end());
    EXPECT_NE(std::find(producers.begin(), producers.end(), 1u),
              producers.end());

    // Both definitions are observed by some use.
    for (std::size_t d = 0; d < rdefs.defs.size(); ++d) {
        if (rdefs.defs[d].instr == 0 || rdefs.defs[d].instr == 1)
            EXPECT_TRUE(rdefs.used[d]);
    }
}

} // namespace
