/**
 * @file
 * Tests for catalog characterization and the on-disk cache.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "asm/assembler.hh"
#include "core/characterize.hh"

namespace {

using namespace mica;
using core::CharacterizationResult;
using core::ExperimentConfig;

TEST(Characterize, ProgramYieldsRequestedIntervals)
{
    const auto prog = assembler::assemble("loop: addi x5, x5, 1\n"
                                          "jal x0, loop");
    const auto intervals = core::characterizeProgram(prog, 1000, 7);
    EXPECT_EQ(intervals.size(), 7u);
}

TEST(Characterize, HaltedProgramStopsEarly)
{
    const auto prog = assembler::assemble("addi x5, x0, 1\nhalt");
    const auto intervals = core::characterizeProgram(prog, 1000, 5);
    EXPECT_TRUE(intervals.empty()); // too short for a full interval
}

TEST(Characterize, TrappingProgramThrows)
{
    const auto prog = assembler::assemble("jalr x0, x0, 64");
    EXPECT_THROW((void)core::characterizeProgram(prog, 100, 1),
                 std::runtime_error);
}

TEST(Characterize, KeyIgnoresAnalysisParameters)
{
    ExperimentConfig a;
    ExperimentConfig b = a;
    b.kmeans_k = 77;
    b.samples_per_benchmark = 13;
    b.seed = 999;
    EXPECT_EQ(a.characterizationKey(), b.characterizationKey());
    b.interval_instructions = 1234;
    EXPECT_NE(a.characterizationKey(), b.characterizationKey());
    ExperimentConfig c;
    c.interval_scale = 0.5;
    EXPECT_NE(a.characterizationKey(), c.characterizationKey());
}

/** A small synthetic result for save/load round trips. */
CharacterizationResult
sampleResult()
{
    CharacterizationResult r;
    r.benchmark_ids = {"SuiteA/x", "SuiteA/y"};
    r.benchmark_names = {"x", "y"};
    r.benchmark_suites = {"SuiteA", "SuiteA"};
    for (int i = 0; i < 5; ++i) {
        core::IntervalRecord rec;
        rec.benchmark = i % 2;
        rec.input = static_cast<std::uint32_t>(i % 3);
        for (std::size_t c = 0; c < metrics::kNumCharacteristics; ++c)
            rec.values[c] = 0.25 * static_cast<double>(i) +
                            0.001 * static_cast<double>(c);
        r.intervals.push_back(rec);
    }
    return r;
}

TEST(Characterize, SaveLoadRoundTrip)
{
    const std::string path = "/tmp/micaphase_chars_test.csv";
    const auto original = sampleResult();
    core::saveCharacterization(path, original);

    CharacterizationResult loaded;
    loaded.benchmark_ids = original.benchmark_ids;
    loaded.benchmark_names = original.benchmark_names;
    loaded.benchmark_suites = original.benchmark_suites;
    ASSERT_TRUE(core::loadCharacterization(path, loaded));
    ASSERT_EQ(loaded.intervals.size(), original.intervals.size());
    for (std::size_t i = 0; i < loaded.intervals.size(); ++i) {
        EXPECT_EQ(loaded.intervals[i].benchmark,
                  original.intervals[i].benchmark);
        EXPECT_EQ(loaded.intervals[i].input, original.intervals[i].input);
        for (std::size_t c = 0; c < metrics::kNumCharacteristics; ++c)
            EXPECT_DOUBLE_EQ(loaded.intervals[i].values[c],
                             original.intervals[i].values[c]);
    }
    std::remove(path.c_str());
}

TEST(Characterize, LoadMissingFileFails)
{
    CharacterizationResult r;
    EXPECT_FALSE(core::loadCharacterization("/tmp/nope_does_not_exist.csv",
                                            r));
}

TEST(Characterize, SaveWritesFooterAndLeavesNoTempFile)
{
    const std::string path = "/tmp/micaphase_chars_footer.csv";
    const auto original = sampleResult();
    core::saveCharacterization(path, original);

    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
        << "temporary sibling must be renamed away";

    std::ifstream in(path);
    std::string line, last;
    while (std::getline(in, line))
        if (!line.empty())
            last = line;
    EXPECT_EQ(last, "#rows," + std::to_string(original.intervals.size()));
    std::remove(path.c_str());
}

TEST(Characterize, LoadRejectsTruncatedFile)
{
    const std::string path = "/tmp/micaphase_chars_trunc.csv";
    const auto original = sampleResult();
    core::saveCharacterization(path, original);

    // Chop the file mid-way: a crashed non-atomic writer would leave
    // something like this. The missing footer must turn it into a miss.
    std::string contents;
    {
        std::ifstream in(path);
        std::stringstream ss;
        ss << in.rdbuf();
        contents = ss.str();
    }
    {
        std::ofstream out(path, std::ios::trunc);
        out << contents.substr(0, contents.size() / 2);
    }

    CharacterizationResult loaded;
    loaded.benchmark_ids = original.benchmark_ids;
    loaded.benchmark_names = original.benchmark_names;
    loaded.benchmark_suites = original.benchmark_suites;
    EXPECT_FALSE(core::loadCharacterization(path, loaded));
    std::remove(path.c_str());
}

TEST(Characterize, LoadRejectsWrongFooterCount)
{
    const std::string path = "/tmp/micaphase_chars_badfooter.csv";
    const auto original = sampleResult();
    core::saveCharacterization(path, original);

    // Drop the last data row but keep the (now lying) footer.
    std::vector<std::string> lines;
    {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    ASSERT_GE(lines.size(), 3u);
    const std::string footer = lines.back();
    ASSERT_EQ(footer.rfind("#rows,", 0), 0u);
    lines.erase(lines.end() - 2); // last data row
    {
        std::ofstream out(path, std::ios::trunc);
        for (const std::string &line : lines)
            out << line << "\n";
    }

    CharacterizationResult loaded;
    loaded.benchmark_ids = original.benchmark_ids;
    loaded.benchmark_names = original.benchmark_names;
    loaded.benchmark_suites = original.benchmark_suites;
    EXPECT_FALSE(core::loadCharacterization(path, loaded));
    std::remove(path.c_str());
}

TEST(Characterize, LoadRejectsUnknownBenchmark)
{
    const std::string path = "/tmp/micaphase_chars_test2.csv";
    core::saveCharacterization(path, sampleResult());
    CharacterizationResult other;
    other.benchmark_ids = {"SuiteB/z"};
    EXPECT_FALSE(core::loadCharacterization(path, other));
    std::remove(path.c_str());
}

TEST(Characterize, IntervalsPerBenchmark)
{
    const auto r = sampleResult();
    const auto counts = r.intervalsPerBenchmark();
    ASSERT_EQ(counts.size(), 2u);
    EXPECT_EQ(counts[0], 3u);
    EXPECT_EQ(counts[1], 2u);
}

TEST(Characterize, ThreadCountDoesNotChangeResults)
{
    workloads::SuiteCatalog catalog;
    ExperimentConfig cfg;
    cfg.interval_instructions = 2000;
    cfg.interval_scale = 0.02;
    cfg.cache_dir.clear();

    ExperimentConfig serial = cfg;
    serial.threads = 1;
    ExperimentConfig parallel = cfg;
    parallel.threads = 4;

    const auto a = core::characterizeCatalog(catalog, serial);
    const auto b = core::characterizeCatalog(catalog, parallel);
    ASSERT_EQ(a.intervals.size(), b.intervals.size());
    for (std::size_t i = 0; i < a.intervals.size(); ++i) {
        ASSERT_EQ(a.intervals[i].benchmark, b.intervals[i].benchmark);
        ASSERT_EQ(a.intervals[i].input, b.intervals[i].input);
        for (std::size_t c = 0; c < metrics::kNumCharacteristics; ++c)
            ASSERT_EQ(a.intervals[i].values[c], b.intervals[i].values[c]);
    }
}

TEST(Characterize, ThreadsZeroMeansHardwareConcurrency)
{
    // 0 resolves to the hardware concurrency (capped at the benchmark
    // count); the results must match an explicit serial run bit for bit.
    workloads::SuiteCatalog catalog;
    ExperimentConfig cfg;
    cfg.interval_instructions = 2000;
    cfg.interval_scale = 0.02;
    cfg.cache_dir.clear();

    ExperimentConfig hw = cfg;
    hw.threads = 0;
    ExperimentConfig serial = cfg;
    serial.threads = 1;

    const auto a = core::characterizeCatalog(catalog, serial);
    const auto b = core::characterizeCatalog(catalog, hw);
    ASSERT_EQ(a.intervals.size(), b.intervals.size());
    for (std::size_t i = 0; i < a.intervals.size(); ++i)
        for (std::size_t c = 0; c < metrics::kNumCharacteristics; ++c)
            ASSERT_EQ(a.intervals[i].values[c], b.intervals[i].values[c]);
}

TEST(Characterize, ProgressReportsEachBenchmarkExactlyOnce)
{
    workloads::SuiteCatalog catalog;
    ExperimentConfig cfg;
    cfg.interval_instructions = 2000;
    cfg.interval_scale = 0.02;
    cfg.cache_dir.clear();
    cfg.threads = 4;

    // The progress mutex in characterizeCatalog serializes callbacks, so
    // plain containers are safe here.
    std::vector<std::string> reported_ids;
    std::vector<std::size_t> finished_counts;
    std::vector<std::size_t> totals;
    const auto result = core::characterizeCatalog(
        catalog, cfg,
        [&](const std::string &id, std::size_t finished,
            std::size_t total) {
            reported_ids.push_back(id);
            finished_counts.push_back(finished);
            totals.push_back(total);
        });

    const std::size_t n = catalog.benchmarks().size();
    ASSERT_EQ(reported_ids.size(), n);

    // Each benchmark id appears exactly once.
    std::vector<std::string> sorted_ids = reported_ids;
    std::sort(sorted_ids.begin(), sorted_ids.end());
    std::vector<std::string> expected_ids = result.benchmark_ids;
    std::sort(expected_ids.begin(), expected_ids.end());
    EXPECT_EQ(sorted_ids, expected_ids);

    // `finished` increases monotonically from 1 to n; `total` is constant.
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(finished_counts[i], i + 1);
        EXPECT_EQ(totals[i], n);
    }
}

TEST(Characterize, GranularityChangesResolutionNotValidity)
{
    // Paper section 3.9: the methodology applies at any interval
    // granularity. Finer intervals must partition the same instruction
    // stream: footprints shrink (or stay equal), fractions stay bounded,
    // and the instruction budget is conserved.
    workloads::SuiteCatalog catalog;
    const auto *bench = catalog.find("SPECint2000/mcf");
    ASSERT_NE(bench, nullptr);
    const auto program = bench->build(0);

    const auto coarse = core::characterizeProgram(program, 40000, 2);
    const auto fine = core::characterizeProgram(program, 10000, 8);
    ASSERT_EQ(coarse.size(), 2u);
    ASSERT_EQ(fine.size(), 8u);

    namespace m = metrics::midx;
    double coarse_max_fp = 0.0, fine_max_fp = 0.0;
    for (const auto &v : coarse)
        coarse_max_fp = std::max(coarse_max_fp, v[m::DataFootprint64B]);
    for (const auto &v : fine)
        fine_max_fp = std::max(fine_max_fp, v[m::DataFootprint64B]);
    EXPECT_LE(fine_max_fp, coarse_max_fp + 1e-9)
        << "a sub-interval cannot touch more blocks than its superset";

    for (const auto &v : fine) {
        EXPECT_GE(v[m::MixMemRead], 0.0);
        EXPECT_LE(v[m::MixMemRead], 1.0);
        EXPECT_GT(v[m::Ilp32], 0.0);
    }
}

TEST(Characterize, CacheAvoidsRecomputation)
{
    const std::string cache_dir = "/tmp/micaphase_cache_test";
    std::filesystem::remove_all(cache_dir);

    workloads::SuiteCatalog catalog;
    ExperimentConfig cfg;
    cfg.interval_instructions = 2000;
    cfg.interval_scale = 0.02; // ~1 interval per benchmark
    cfg.cache_dir = cache_dir;

    int progress_calls_first = 0;
    const auto first = core::characterizeWithCache(
        catalog, cfg,
        [&](const std::string &, std::size_t, std::size_t) {
            ++progress_calls_first;
        });
    EXPECT_GT(progress_calls_first, 0);

    int progress_calls_second = 0;
    const auto second = core::characterizeWithCache(
        catalog, cfg,
        [&](const std::string &, std::size_t, std::size_t) {
            ++progress_calls_second;
        });
    EXPECT_EQ(progress_calls_second, 0) << "cache miss on identical config";
    ASSERT_EQ(first.intervals.size(), second.intervals.size());
    for (std::size_t i = 0; i < first.intervals.size(); ++i)
        for (std::size_t c = 0; c < metrics::kNumCharacteristics; ++c)
            EXPECT_DOUBLE_EQ(first.intervals[i].values[c],
                             second.intervals[i].values[c]);
    std::filesystem::remove_all(cache_dir);
}

} // namespace
