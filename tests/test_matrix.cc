/**
 * @file
 * Unit tests for the dense matrix substrate.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/matrix.hh"

namespace {

using mica::stats::Matrix;

TEST(Matrix, ZeroInitialized)
{
    Matrix m(3, 4);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            EXPECT_EQ(m(r, c), 0.0);
}

TEST(Matrix, DefaultIsEmpty)
{
    Matrix m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.rows(), 0u);
}

TEST(Matrix, ElementAccess)
{
    Matrix m(2, 2);
    m(0, 1) = 3.5;
    m(1, 0) = -2.0;
    EXPECT_EQ(m.at(0, 1), 3.5);
    EXPECT_EQ(m.at(1, 0), -2.0);
}

TEST(Matrix, FromRows)
{
    Matrix m = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m(1, 2), 6.0);
}

TEST(Matrix, AppendRowSetsWidth)
{
    Matrix m;
    const double row[] = {1.0, 2.0};
    m.appendRow(row);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_EQ(m.rows(), 1u);
}

TEST(Matrix, AppendRowWidthMismatchThrows)
{
    Matrix m;
    const double r1[] = {1.0, 2.0};
    const double r2[] = {1.0};
    m.appendRow(r1);
    EXPECT_THROW(m.appendRow(r2), std::invalid_argument);
}

TEST(Matrix, RowViewIsMutable)
{
    Matrix m(2, 3);
    auto row = m.row(1);
    row[2] = 9.0;
    EXPECT_EQ(m(1, 2), 9.0);
}

TEST(Matrix, ColCopy)
{
    Matrix m = Matrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
    const auto col = m.col(1);
    ASSERT_EQ(col.size(), 3u);
    EXPECT_EQ(col[0], 2.0);
    EXPECT_EQ(col[2], 6.0);
}

TEST(Matrix, Identity)
{
    Matrix id = Matrix::identity(3);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_EQ(id(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, MultiplyKnownResult)
{
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    Matrix b = Matrix::fromRows({{5, 6}, {7, 8}});
    Matrix c = a.multiply(b);
    EXPECT_EQ(c(0, 0), 19.0);
    EXPECT_EQ(c(0, 1), 22.0);
    EXPECT_EQ(c(1, 0), 43.0);
    EXPECT_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyByIdentity)
{
    Matrix a = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    Matrix r = a.multiply(Matrix::identity(3));
    EXPECT_EQ(r.maxAbsDiff(a), 0.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows)
{
    Matrix a(2, 3), b(2, 3);
    EXPECT_THROW((void)a.multiply(b), std::invalid_argument);
}

TEST(Matrix, Transpose)
{
    Matrix a = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    Matrix t = a.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_EQ(t(2, 1), 6.0);
    EXPECT_EQ(t.transposed().maxAbsDiff(a), 0.0);
}

TEST(Matrix, LeftCols)
{
    Matrix a = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    Matrix l = a.leftCols(2);
    EXPECT_EQ(l.cols(), 2u);
    EXPECT_EQ(l(1, 1), 5.0);
}

TEST(Matrix, SelectCols)
{
    Matrix a = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    const std::size_t idx[] = {2, 0};
    Matrix s = a.selectCols(idx);
    EXPECT_EQ(s(0, 0), 3.0);
    EXPECT_EQ(s(0, 1), 1.0);
    EXPECT_EQ(s(1, 0), 6.0);
}

TEST(Matrix, SelectRows)
{
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
    const std::size_t idx[] = {2, 2, 0};
    Matrix s = a.selectRows(idx);
    EXPECT_EQ(s.rows(), 3u);
    EXPECT_EQ(s(0, 0), 5.0);
    EXPECT_EQ(s(1, 0), 5.0);
    EXPECT_EQ(s(2, 1), 2.0);
}

TEST(Matrix, MaxAbsDiff)
{
    Matrix a = Matrix::fromRows({{1, 2}});
    Matrix b = Matrix::fromRows({{1.5, 1.0}});
    EXPECT_DOUBLE_EQ(a.maxAbsDiff(b), 1.0);
}

TEST(Matrix, Distances)
{
    const double a[] = {0.0, 0.0};
    const double b[] = {3.0, 4.0};
    EXPECT_DOUBLE_EQ(mica::stats::euclideanDistance(a, b), 5.0);
    EXPECT_DOUBLE_EQ(mica::stats::squaredDistance(a, b), 25.0);
}

TEST(Matrix, ToStringContainsValues)
{
    Matrix a = Matrix::fromRows({{1.25, -2.0}});
    const std::string s = a.toString(2);
    EXPECT_NE(s.find("1.25"), std::string::npos);
    EXPECT_NE(s.find("-2.00"), std::string::npos);
}

} // namespace
