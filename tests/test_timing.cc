/**
 * @file
 * Tests for the cycle-approximate timing model (cache, gshare, CPI), and
 * a cross-check that the microarchitecture-independent PPM metric tracks
 * a real predictor's behaviour.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "mica/profiler.hh"
#include "vm/cpu.hh"
#include "vm/timing.hh"

namespace {

using namespace mica;
using vm::CacheModel;
using vm::GsharePredictor;
using vm::TimingConfig;
using vm::TimingModel;

TEST(CacheModel, HitAfterTouch)
{
    CacheModel cache(1024, 64, 2);
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1038)) << "same 64B line";
    EXPECT_FALSE(cache.access(0x1040)) << "next line";
}

TEST(CacheModel, CapacityEviction)
{
    // Direct-mapped-ish tiny cache: 2 sets x 2 ways x 64B = 256B.
    CacheModel cache(256, 64, 2);
    // Three lines mapping to the same set (stride = 2 lines).
    EXPECT_FALSE(cache.access(0x0000));
    EXPECT_FALSE(cache.access(0x0080));
    EXPECT_FALSE(cache.access(0x0100));
    // 0x0000 was LRU and must be gone.
    EXPECT_FALSE(cache.access(0x0000));
    // 0x0100 is most recent and still resident.
    EXPECT_TRUE(cache.access(0x0100));
}

TEST(CacheModel, LruKeepsHotLine)
{
    CacheModel cache(256, 64, 2);
    (void)cache.access(0x0000);
    (void)cache.access(0x0080);
    (void)cache.access(0x0000); // re-touch: now 0x0080 is LRU
    (void)cache.access(0x0100); // evicts 0x0080
    EXPECT_TRUE(cache.access(0x0000));
    EXPECT_FALSE(cache.access(0x0080));
}

TEST(CacheModel, MissRate)
{
    CacheModel cache(1024, 64, 2);
    (void)cache.access(0);
    (void)cache.access(0);
    (void)cache.access(0);
    (void)cache.access(64);
    EXPECT_DOUBLE_EQ(cache.missRate(), 0.5);
}

TEST(Gshare, LearnsConstantBranch)
{
    GsharePredictor predictor(10);
    int misses = 0;
    for (int i = 0; i < 1000; ++i)
        misses += !predictor.predictAndTrain(0x1000, true);
    // History warm-up touches ~log2_entries fresh counters before the
    // index stabilizes; after that the branch never misses.
    EXPECT_LT(misses, 20);
}

TEST(Gshare, LearnsAlternatingBranch)
{
    GsharePredictor predictor(10);
    int misses = 0;
    bool flip = false;
    for (int i = 0; i < 2000; ++i) {
        misses += !predictor.predictAndTrain(0x2000, flip);
        flip = !flip;
    }
    EXPECT_LT(static_cast<double>(misses) / 2000.0, 0.05);
}

/** Run a program under the timing sink. */
vm::TimingStats
time_program(const std::string &source, std::uint64_t budget = 50000,
             const TimingConfig &config = {})
{
    const auto prog = assembler::assemble(source);
    vm::Cpu cpu(prog);
    TimingModel timing(config);
    (void)cpu.run(budget, &timing);
    return timing.stats();
}

TEST(TimingModel, CpiAtLeastOne)
{
    const auto stats = time_program(R"(
    loop:
        addi x5, x5, 1
        jal x0, loop
    )");
    EXPECT_EQ(stats.instructions, 50000u);
    EXPECT_GE(stats.cpi(), 1.0);
    EXPECT_LT(stats.cpi(), 1.1) << "tight ALU loop should be near 1 CPI";
}

TEST(TimingModel, DivLatencyRaisesCpi)
{
    const auto alu = time_program("loop:\nadd x5, x5, x6\njal x0, loop");
    const auto divs = time_program("loop:\ndiv x5, x5, x6\njal x0, loop");
    EXPECT_GT(divs.cpi(), alu.cpi() + 5.0);
}

TEST(TimingModel, StreamingMissesRaiseCpi)
{
    // Working set (1MB) far beyond L2 -> every new line misses both
    // levels.
    const auto streaming = time_program(R"(
        .data
        buf: .zero 1048576
        .text
        addi x5, x0, buf
    loop:
        ld x6, 0(x5)
        addi x5, x5, 64
        slti x7, x5, 17800000
        bne x7, x0, loop
        addi x5, x0, buf
        jal x0, loop
    )");
    const auto resident = time_program(R"(
        .data
        buf: .zero 256
        .text
        addi x5, x0, buf
    loop:
        ld x6, 0(x5)
        addi x7, x7, 1
        slti x8, x7, 100000000
        bne x8, x0, loop
        jal x0, loop
    )");
    EXPECT_GT(streaming.cpi(), resident.cpi() + 3.0);
}

TEST(TimingModel, RandomBranchesPayThePenalty)
{
    // In-code LCG-driven branch: a gshare predictor misses ~half.
    const auto random = time_program(R"(
        .data
        mult: .word64 6364136223846793005
        .text
        ld x9, mult(x0)
        addi x6, x0, 12345
    loop:
        mul x6, x6, x9
        addi x6, x6, 12345
        srli x7, x6, 60
        andi x7, x7, 1
        beq x7, x0, skip
        addi x8, x8, 1
    skip:
        jal x0, loop
    )");
    EXPECT_GT(random.branchMissRate(), 0.3);
    EXPECT_GT(random.cpi(), 1.5);
}

TEST(TimingModel, DeterministicAcrossRuns)
{
    const char *src = R"(
        .data
        buf: .zero 65536
        .text
        addi x5, x0, buf
    loop:
        ld x6, 0(x5)
        addi x5, x5, 8
        andi x5, x5, 0xffff
        addi x5, x5, buf
        jal x0, loop
    )";
    const auto a = time_program(src);
    const auto b = time_program(src);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.branch_mispredictions, b.branch_mispredictions);
}

TEST(TimingModel, PpmMetricTracksRealPredictor)
{
    // Run the same program under the MICA profiler and the timing model:
    // a program with near-random branches must score high on both the
    // idealized PPM metric and the concrete gshare miss rate; a regular
    // loop must score low on both.
    const char *random_src = R"(
        .data
        mult: .word64 6364136223846793005
        .text
        ld x9, mult(x0)
        addi x6, x0, 99
    loop:
        mul x6, x6, x9
        addi x6, x6, 12345
        srli x7, x6, 60
        andi x7, x7, 1
        beq x7, x0, skip
        addi x8, x8, 1
    skip:
        jal x0, loop
    )";
    const char *regular_src = R"(
    outer:
        addi x5, x0, 16
    loop:
        addi x5, x5, -1
        bne x5, x0, loop
        jal x0, outer
    )";

    auto ppm_of = [](const char *src) {
        const auto prog = assembler::assemble(src);
        vm::Cpu cpu(prog);
        profiler::MicaProfiler prof(30000);
        (void)cpu.run(30000, &prof);
        return prof.intervals().at(0)[metrics::midx::PpmGag12];
    };
    const double random_ppm = ppm_of(random_src);
    const double regular_ppm = ppm_of(regular_src);
    const double random_gshare =
        time_program(random_src, 30000).branchMissRate();
    const double regular_gshare =
        time_program(regular_src, 30000).branchMissRate();

    EXPECT_GT(random_ppm, regular_ppm + 0.2);
    EXPECT_GT(random_gshare, regular_gshare + 0.2);
}

} // namespace
