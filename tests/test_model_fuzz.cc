/**
 * @file
 * Structured fuzzing of the phase-model loaders (src/model).
 *
 * Starting from the golden v1 fixture (plus its 8-byte-aligned resave and
 * a v2 delta-bearing resave), applies thousands of seeded, format-aware
 * mutations — bit flips, truncations, extensions, section-table field
 * corruption, payload edits with the section CRC re-fixed so deeper
 * validation layers are reached, table-entry swaps/duplicates, and
 * deliberately overlapping sections — and feeds every mutant to BOTH
 * loaders: the copying PhaseModel::loadFromBytes and the zero-copy
 * PhaseModelView::parse. Targeted delta mutations (truncation, count
 * edits behind a re-fixed CRC, delta-before-base table ordering) ride on
 * top of the random sweep.
 *
 * The contract under test: every load ends in either a clean success or a
 * ModelError. No crash, no hang, no over-read (the suite runs under the
 * ASan/UBSan CI jobs), no other exception type, and the two loaders always
 * agree on accept/reject. The seeded stats::Rng makes every run
 * reproducible: a failure report's iteration number replays exactly.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "model/model_view.hh"
#include "model/phase_model.hh"
#include "stats/rng.hh"

namespace {

using namespace mica;
using model::ModelError;
using model::PhaseModel;
using model::PhaseModelView;

// Layout constants of the v1 container (docs/MODEL.md): 16-byte header
// (magic, version, section count) followed by 32-byte table entries
// (id, reserved, offset, size, crc32, reserved).
constexpr std::size_t kHeader = 16;
constexpr std::size_t kEntry = 32;

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

std::uint32_t
crc32(const std::uint8_t *data, std::size_t size)
{
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i) {
        crc ^= data[i];
        for (int k = 0; k < 8; ++k)
            crc = (crc & 1u) ? 0xEDB88320u ^ (crc >> 1) : crc >> 1;
    }
    return crc ^ 0xFFFFFFFFu;
}

std::uint32_t
getU32(const std::vector<std::uint8_t> &b, std::size_t pos)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(b[pos + i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::vector<std::uint8_t> &b, std::size_t pos)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(b[pos + i]) << (8 * i);
    return v;
}

void
putU32(std::vector<std::uint8_t> &b, std::size_t pos, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        b[pos + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
putU64(std::vector<std::uint8_t> &b, std::size_t pos, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        b[pos + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

/** Recompute and store entry i's CRC from the bytes its table row spans. */
void
refixCrc(std::vector<std::uint8_t> &b, std::size_t entry)
{
    const auto off = static_cast<std::size_t>(getU64(b, entry + 8));
    const auto size = static_cast<std::size_t>(getU64(b, entry + 16));
    if (off <= b.size() && size <= b.size() - off)
        putU32(b, entry + 24, crc32(b.data() + off, size));
}

/** Number of table entries actually present in the image. */
std::size_t
entryCount(const std::vector<std::uint8_t> &b)
{
    if (b.size() < kHeader)
        return 0;
    const std::uint32_t n = getU32(b, 12);
    const std::size_t fit = (b.size() - kHeader) / kEntry;
    return n < fit ? n : fit;
}

/**
 * One seeded structured mutation of `bytes`. The strategy mix is weighted
 * toward edits that get past the cheap outer checks (CRC re-fix, table
 * surgery) so the deeper layers — bounds arithmetic, overlap rejection,
 * payload decoding, shape validation — see real traffic.
 */
void
mutate(std::vector<std::uint8_t> &bytes, stats::Rng &rng)
{
    const std::size_t n = bytes.size();
    const std::size_t entries = entryCount(bytes);
    switch (rng.nextBelow(9)) {
      case 0: { // random bit flips anywhere
        const std::size_t flips = 1 + rng.nextBelow(8);
        for (std::size_t i = 0; i < flips && n > 0; ++i) {
            const auto pos = static_cast<std::size_t>(rng.nextBelow(n));
            bytes[pos] ^= static_cast<std::uint8_t>(
                1u << rng.nextBelow(8));
        }
        break;
      }
      case 1: // truncate to a random prefix (including empty)
        bytes.resize(static_cast<std::size_t>(rng.nextBelow(n + 1)));
        break;
      case 2: { // append random junk
        const std::size_t extra = 1 + rng.nextBelow(64);
        for (std::size_t i = 0; i < extra; ++i)
            bytes.push_back(static_cast<std::uint8_t>(rng.nextBelow(256)));
        break;
      }
      case 3: { // corrupt one table-entry field (id/offset/size/crc)
        if (entries == 0)
            break;
        const std::size_t e =
            kHeader + static_cast<std::size_t>(rng.nextBelow(entries)) *
                          kEntry;
        switch (rng.nextBelow(4)) {
          case 0: // id: unknown, duplicate-prone, or zero
            putU32(bytes, e, static_cast<std::uint32_t>(rng.nextBelow(16)));
            break;
          case 1: { // offset: small shifts and huge values
            const std::uint64_t off = getU64(bytes, e + 8);
            putU64(bytes, e + 8,
                   rng.nextBool(0.5) ? off + rng.nextBelow(32) - 16
                                     : rng.nextU64());
            break;
          }
          case 2: { // size: ditto
            const std::uint64_t size = getU64(bytes, e + 16);
            putU64(bytes, e + 16,
                   rng.nextBool(0.5) ? size + rng.nextBelow(32) - 16
                                     : rng.nextU64());
            break;
          }
          default: // crc
            putU32(bytes, e + 24,
                   static_cast<std::uint32_t>(rng.nextU64()));
            break;
        }
        break;
      }
      case 4: { // payload edit with the CRC re-fixed: reaches the decoders
        if (entries == 0)
            break;
        const std::size_t e =
            kHeader + static_cast<std::size_t>(rng.nextBelow(entries)) *
                          kEntry;
        const auto off = static_cast<std::size_t>(getU64(bytes, e + 8));
        const auto size = static_cast<std::size_t>(getU64(bytes, e + 16));
        if (off >= bytes.size() || size == 0 ||
            size > bytes.size() - off)
            break;
        const std::size_t edits = 1 + rng.nextBelow(4);
        for (std::size_t i = 0; i < edits; ++i) {
            const std::size_t pos =
                off + static_cast<std::size_t>(rng.nextBelow(size));
            if (rng.nextBool(0.5)) {
                bytes[pos] ^= static_cast<std::uint8_t>(
                    1u << rng.nextBelow(8));
            } else {
                bytes[pos] =
                    static_cast<std::uint8_t>(rng.nextBelow(256));
            }
        }
        refixCrc(bytes, e);
        break;
      }
      case 5: { // swap two whole table entries (a legal permutation)
        if (entries < 2)
            break;
        const std::size_t a =
            kHeader + static_cast<std::size_t>(rng.nextBelow(entries)) *
                          kEntry;
        const std::size_t b =
            kHeader + static_cast<std::size_t>(rng.nextBelow(entries)) *
                          kEntry;
        for (std::size_t i = 0; i < kEntry; ++i)
            std::swap(bytes[a + i], bytes[b + i]);
        break;
      }
      case 6: { // duplicate one entry over another (dup + missing ids)
        if (entries < 2)
            break;
        const std::size_t a =
            kHeader + static_cast<std::size_t>(rng.nextBelow(entries)) *
                          kEntry;
        const std::size_t b =
            kHeader + static_cast<std::size_t>(rng.nextBelow(entries)) *
                          kEntry;
        for (std::size_t i = 0; i < kEntry; ++i)
            bytes[b + i] = bytes[a + i];
        break;
      }
      case 7: { // make one section overlap another, CRC kept valid
        if (entries < 2)
            break;
        const std::size_t a =
            kHeader + static_cast<std::size_t>(rng.nextBelow(entries)) *
                          kEntry;
        const std::size_t b =
            kHeader + static_cast<std::size_t>(rng.nextBelow(entries)) *
                          kEntry;
        // Point b at a's bytes (same offset/size/crc, b's id kept): the
        // CRC layer passes, so only the overlap guard can reject this.
        putU64(bytes, b + 8, getU64(bytes, a + 8));
        putU64(bytes, b + 16, getU64(bytes, a + 16));
        putU32(bytes, b + 24, getU32(bytes, a + 24));
        break;
      }
      default: { // header surgery: version / section count
        if (n < kHeader)
            break;
        if (rng.nextBool(0.5))
            putU32(bytes, 8, static_cast<std::uint32_t>(rng.nextBelow(4)));
        else
            putU32(bytes, 12,
                   static_cast<std::uint32_t>(rng.nextBelow(64)));
        break;
      }
    }
}

struct FuzzTally
{
    std::size_t accepted = 0;
    std::size_t rejected = 0;
};

/**
 * Feed one mutant to both loaders. Anything other than success or
 * ModelError — and any accept/reject disagreement between the copying and
 * zero-copy paths — is a test failure.
 */
void
exerciseLoaders(const std::vector<std::uint8_t> &mutant, std::size_t iter,
                FuzzTally &tally)
{
    bool copy_ok = false;
    PhaseModel loaded;
    try {
        loaded = PhaseModel::loadFromBytes(mutant, "fuzz");
        copy_ok = true;
    } catch (const ModelError &) {
        // expected rejection
    } catch (const std::exception &e) {
        ADD_FAILURE() << "iteration " << iter
                      << ": loadFromBytes threw non-ModelError: "
                      << e.what();
        return;
    }

    bool view_ok = false;
    try {
        const PhaseModelView view =
            PhaseModelView::parse(mutant, "fuzz");
        view_ok = true;
        if (copy_ok) {
            // Both accepted: they must have decoded the same model,
            // including the delta history (shared decode by design).
            EXPECT_EQ(loaded.training_rows, view.meta().training_rows);
            EXPECT_EQ(loaded.columns(), view.columns());
            EXPECT_EQ(loaded.numClusters(), view.numClusters());
            EXPECT_EQ(
                loaded.loadings.maxAbsDiff(
                    stats::Matrix::fromView(view.loadings())),
                0.0);
            ASSERT_EQ(loaded.deltas.size(), view.meta().deltas.size());
            for (std::size_t i = 0; i < loaded.deltas.size(); ++i) {
                EXPECT_EQ(loaded.deltas[i].sequence,
                          view.meta().deltas[i].sequence);
                EXPECT_EQ(loaded.deltas[i].ingested_rows,
                          view.meta().deltas[i].ingested_rows);
                EXPECT_EQ(loaded.deltas[i].assign_counts,
                          view.meta().deltas[i].assign_counts);
                EXPECT_EQ(loaded.deltas[i].refined_centers.maxAbsDiff(
                              view.meta().deltas[i].refined_centers),
                          0.0);
            }
        }
    } catch (const ModelError &) {
        // expected rejection
    } catch (const std::exception &e) {
        ADD_FAILURE() << "iteration " << iter
                      << ": PhaseModelView::parse threw non-ModelError: "
                      << e.what();
        return;
    }

    EXPECT_EQ(copy_ok, view_ok)
        << "iteration " << iter
        << ": copying and zero-copy loaders disagree on accept/reject";
    (copy_ok ? tally.accepted : tally.rejected) += 1;
}

void
fuzzCorpus(const std::vector<std::uint8_t> &pristine, std::uint64_t seed,
           std::size_t iterations, FuzzTally &tally)
{
    stats::Rng rng(seed);
    for (std::size_t iter = 0; iter < iterations; ++iter) {
        std::vector<std::uint8_t> mutant = pristine;
        // Usually one structured mutation; sometimes stack a second so
        // interactions between strategies get coverage too.
        mutate(mutant, rng);
        if (rng.nextBool(0.25))
            mutate(mutant, rng);
        exerciseLoaders(mutant, iter, tally);
    }
}

std::string
goldenPath()
{
    return std::string(MICAPHASE_TEST_DATA_DIR) +
           "/golden_phase_model_v1.bin";
}

/** Attach two coherent deltas (observation-only + refined) to `m`. */
void
attachDeltas(PhaseModel &m)
{
    const std::size_t k = m.numClusters();
    model::ModelDelta d;
    d.sequence = 1;
    d.base_analysis_key = m.analysis_key;
    d.ingested_rows = 6;
    d.accepted_rows = 6;
    d.deduped_rows = 0;
    d.assign_counts.assign(k, 0);
    d.assign_counts[0] = 6;
    d.mean_distance.assign(k, 0.25);
    d.max_distance.assign(k, 0.5);
    d.total_variation = 0.2;
    d.global_mean_distance = 0.25;
    d.global_max_distance = 0.5;
    m.deltas.push_back(d);

    d.sequence = 2;
    d.ingested_rows = 10;
    d.accepted_rows = 8;
    d.deduped_rows = 2;
    d.dedup_threshold = 0.1;
    d.assign_counts.assign(k, 0);
    d.assign_counts[k - 1] = 10;
    d.refined = true;
    d.refined_centers = m.centers;
    d.center_drift.assign(k, 0.0);
    m.deltas.push_back(d);
}

/** The v2 corpus: the golden model with two deltas attached, resaved. */
std::vector<std::uint8_t>
deltaCorpus(const std::vector<std::uint8_t> &packed, bool aligned)
{
    PhaseModel m = PhaseModel::loadFromBytes(packed, "golden");
    attachDeltas(m);
    const std::string path = "/tmp/micaphase_fuzz_delta.bin";
    m.save(path, model::SaveOptions{.align_sections = aligned});
    std::vector<std::uint8_t> bytes = readFile(path);
    std::remove(path.c_str());
    return bytes;
}

/** Table offset of the `nth` entry with section id `id`. */
std::size_t
findEntry(const std::vector<std::uint8_t> &b, std::uint32_t id,
          std::size_t nth = 0)
{
    const std::size_t entries = entryCount(b);
    for (std::size_t e = 0; e < entries; ++e) {
        const std::size_t pos = kHeader + e * kEntry;
        if (getU32(b, pos) == id) {
            if (nth == 0)
                return pos;
            --nth;
        }
    }
    ADD_FAILURE() << "no table entry with id " << id;
    return kHeader;
}

TEST(PhaseModelFuzz, StructuredMutationsNeverEscapeModelError)
{
    // Corpus: the byte-locked packed golden fixture, its aligned resave
    // (different offsets, padding gaps, aliasing-eligible layout), and a
    // v2 delta-bearing resave (repeatable optional sections, the version
    // gate, and the delta decode all in the mutation blast radius).
    const std::vector<std::uint8_t> packed = readFile(goldenPath());
    ASSERT_GT(packed.size(), kHeader + 7 * kEntry);

    const std::string aligned_path = "/tmp/micaphase_fuzz_aligned.bin";
    PhaseModel::loadFromBytes(packed, "golden")
        .save(aligned_path, model::SaveOptions{.align_sections = true});
    const std::vector<std::uint8_t> aligned = readFile(aligned_path);
    std::remove(aligned_path.c_str());
    ASSERT_GT(aligned.size(), packed.size() - 1);

    const std::vector<std::uint8_t> with_deltas = deltaCorpus(packed, true);
    ASSERT_GT(with_deltas.size(), aligned.size());

    FuzzTally tally;
    fuzzCorpus(packed, 0x5eed0001, 1500, tally);
    fuzzCorpus(aligned, 0x5eed0002, 1000, tally);
    fuzzCorpus(with_deltas, 0x5eed0003, 1000, tally);

    // Non-vacuity: a fuzzer whose mutants all die at the first CRC check
    // (or all survive) is not exercising anything. The entry-swap and
    // benign-payload-edit strategies guarantee real accepts; everything
    // else guarantees real rejects.
    EXPECT_GT(tally.accepted, 0u) << "no mutant ever loaded cleanly";
    EXPECT_GT(tally.rejected, 50u) << "almost nothing was rejected";
    EXPECT_EQ(tally.accepted + tally.rejected, 3500u);
}

TEST(PhaseModelFuzz, TargetedDeltaMutationsAreHandledConsistently)
{
    const std::vector<std::uint8_t> pristine =
        deltaCorpus(readFile(goldenPath()), true);
    // Sanity: the pristine corpus loads with both deltas on both paths.
    ASSERT_EQ(PhaseModel::loadFromBytes(pristine, "delta").deltas.size(),
              2u);
    ASSERT_EQ(PhaseModelView::parse(pristine, "delta").meta().deltas.size(),
              2u);

    auto rejectBoth = [](std::vector<std::uint8_t> img, const char *what) {
        EXPECT_THROW((void)PhaseModel::loadFromBytes(img, "delta"),
                     ModelError)
            << what;
        EXPECT_THROW((void)PhaseModelView::parse(img, "delta"), ModelError)
            << what;
    };

    // Delta payload field offsets (format.hh writeDelta): u32 sequence,
    // u64 base_key/ingested/accepted/deduped, f64 dedup_threshold, then
    // the assign_counts u64Vec (count at +44, first value at +52).
    {
        // Truncated delta: section size shrunk by one, CRC re-fixed, so
        // only the payload decode can notice the missing byte.
        std::vector<std::uint8_t> img = pristine;
        const std::size_t e = findEntry(img, 8);
        putU64(img, e + 16, getU64(img, e + 16) - 1);
        refixCrc(img, e);
        rejectBoth(img, "section size shrunk by one");
    }
    {
        // Physical truncation through the second delta's bytes.
        std::vector<std::uint8_t> img = pristine;
        const std::size_t e = findEntry(img, 8, 1);
        const auto off = static_cast<std::size_t>(getU64(img, e + 8));
        const auto size = static_cast<std::size_t>(getU64(img, e + 16));
        img.resize(off + size / 2);
        rejectBoth(img, "file truncated mid-delta");
    }
    {
        // Count blown up behind a re-fixed CRC: checkedCount must raise
        // ModelError, not attempt a giant allocation.
        std::vector<std::uint8_t> img = pristine;
        const std::size_t e = findEntry(img, 8);
        const auto off = static_cast<std::size_t>(getU64(img, e + 8));
        putU64(img, off + 44, 0x0000FFFFFFFFFFFFull);
        refixCrc(img, e);
        rejectBoth(img, "assign_counts count blown up");
    }
    {
        // A single count value nudged: the decode succeeds, but the sum
        // no longer matches ingested_rows — shape validation rejects on
        // both paths.
        std::vector<std::uint8_t> img = pristine;
        const std::size_t e = findEntry(img, 8);
        const auto off = static_cast<std::size_t>(getU64(img, e + 8));
        putU64(img, off + 52, getU64(img, off + 52) + 1);
        refixCrc(img, e);
        rejectBoth(img, "assign_counts sum mismatch");
    }
    {
        // Sequence zeroed: history must start above 0 and increase.
        std::vector<std::uint8_t> img = pristine;
        const std::size_t e = findEntry(img, 8);
        const auto off = static_cast<std::size_t>(getU64(img, e + 8));
        putU32(img, off, 0);
        refixCrc(img, e);
        rejectBoth(img, "sequence zeroed");
    }
    {
        // Delta-before-base table ordering: swapping the first delta
        // entry with the table's first entry is a legal permutation —
        // both loaders must still accept and decode the same history.
        std::vector<std::uint8_t> img = pristine;
        const std::size_t a = kHeader;
        const std::size_t b = findEntry(img, 8);
        ASSERT_NE(a, b);
        for (std::size_t i = 0; i < kEntry; ++i)
            std::swap(img[a + i], img[b + i]);
        const PhaseModel loaded = PhaseModel::loadFromBytes(img, "perm");
        const PhaseModelView view = PhaseModelView::parse(img, "perm");
        ASSERT_EQ(loaded.deltas.size(), 2u);
        ASSERT_EQ(view.meta().deltas.size(), 2u);
        EXPECT_EQ(loaded.deltas[0].sequence, 1u);
        EXPECT_EQ(loaded.deltas[1].sequence, 2u);
        EXPECT_EQ(view.meta().deltas[0].sequence, 1u);
        EXPECT_EQ(view.meta().deltas[1].sequence, 2u);
    }
}

TEST(PhaseModelFuzz, DegenerateImagesAreRejectedNotCrashed)
{
    // Boundary images that skip the mutation machinery entirely.
    std::vector<std::vector<std::uint8_t>> images;
    images.push_back({});                                   // empty
    images.push_back({'M'});                                // 1 byte
    images.push_back(std::vector<std::uint8_t>(kHeader, 0)); // zero header
    // Valid magic + version, section count claiming more than fits.
    {
        std::vector<std::uint8_t> b(kHeader, 0);
        const char magic[8] = {'M', 'I', 'C', 'A', 'P', 'H', 'M', 'D'};
        for (int i = 0; i < 8; ++i)
            b[static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(magic[i]);
        putU32(b, 8, 1);
        putU32(b, 12, 0xFFFFFFFFu);
        images.push_back(b);
    }
    for (std::size_t i = 0; i < images.size(); ++i) {
        EXPECT_THROW(
            (void)PhaseModel::loadFromBytes(images[i], "degenerate"),
            ModelError)
            << "image " << i;
        EXPECT_THROW((void)PhaseModelView::parse(images[i], "degenerate"),
                     ModelError)
            << "image " << i;
    }
}

} // namespace
