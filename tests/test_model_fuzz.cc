/**
 * @file
 * Structured fuzzing of the phase-model loaders (src/model).
 *
 * Starting from the golden v1 fixture (and its 8-byte-aligned resave),
 * applies thousands of seeded, format-aware mutations — bit flips,
 * truncations, extensions, section-table field corruption, payload edits
 * with the section CRC re-fixed so deeper validation layers are reached,
 * table-entry swaps/duplicates, and deliberately overlapping sections —
 * and feeds every mutant to BOTH loaders: the copying
 * PhaseModel::loadFromBytes and the zero-copy PhaseModelView::parse.
 *
 * The contract under test: every load ends in either a clean success or a
 * ModelError. No crash, no hang, no over-read (the suite runs under the
 * ASan/UBSan CI jobs), no other exception type, and the two loaders always
 * agree on accept/reject. The seeded stats::Rng makes every run
 * reproducible: a failure report's iteration number replays exactly.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "model/model_view.hh"
#include "model/phase_model.hh"
#include "stats/rng.hh"

namespace {

using namespace mica;
using model::ModelError;
using model::PhaseModel;
using model::PhaseModelView;

// Layout constants of the v1 container (docs/MODEL.md): 16-byte header
// (magic, version, section count) followed by 32-byte table entries
// (id, reserved, offset, size, crc32, reserved).
constexpr std::size_t kHeader = 16;
constexpr std::size_t kEntry = 32;

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

std::uint32_t
crc32(const std::uint8_t *data, std::size_t size)
{
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i) {
        crc ^= data[i];
        for (int k = 0; k < 8; ++k)
            crc = (crc & 1u) ? 0xEDB88320u ^ (crc >> 1) : crc >> 1;
    }
    return crc ^ 0xFFFFFFFFu;
}

std::uint32_t
getU32(const std::vector<std::uint8_t> &b, std::size_t pos)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(b[pos + i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::vector<std::uint8_t> &b, std::size_t pos)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(b[pos + i]) << (8 * i);
    return v;
}

void
putU32(std::vector<std::uint8_t> &b, std::size_t pos, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        b[pos + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
putU64(std::vector<std::uint8_t> &b, std::size_t pos, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        b[pos + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

/** Recompute and store entry i's CRC from the bytes its table row spans. */
void
refixCrc(std::vector<std::uint8_t> &b, std::size_t entry)
{
    const auto off = static_cast<std::size_t>(getU64(b, entry + 8));
    const auto size = static_cast<std::size_t>(getU64(b, entry + 16));
    if (off <= b.size() && size <= b.size() - off)
        putU32(b, entry + 24, crc32(b.data() + off, size));
}

/** Number of table entries actually present in the image. */
std::size_t
entryCount(const std::vector<std::uint8_t> &b)
{
    if (b.size() < kHeader)
        return 0;
    const std::uint32_t n = getU32(b, 12);
    const std::size_t fit = (b.size() - kHeader) / kEntry;
    return n < fit ? n : fit;
}

/**
 * One seeded structured mutation of `bytes`. The strategy mix is weighted
 * toward edits that get past the cheap outer checks (CRC re-fix, table
 * surgery) so the deeper layers — bounds arithmetic, overlap rejection,
 * payload decoding, shape validation — see real traffic.
 */
void
mutate(std::vector<std::uint8_t> &bytes, stats::Rng &rng)
{
    const std::size_t n = bytes.size();
    const std::size_t entries = entryCount(bytes);
    switch (rng.nextBelow(9)) {
      case 0: { // random bit flips anywhere
        const std::size_t flips = 1 + rng.nextBelow(8);
        for (std::size_t i = 0; i < flips && n > 0; ++i) {
            const auto pos = static_cast<std::size_t>(rng.nextBelow(n));
            bytes[pos] ^= static_cast<std::uint8_t>(
                1u << rng.nextBelow(8));
        }
        break;
      }
      case 1: // truncate to a random prefix (including empty)
        bytes.resize(static_cast<std::size_t>(rng.nextBelow(n + 1)));
        break;
      case 2: { // append random junk
        const std::size_t extra = 1 + rng.nextBelow(64);
        for (std::size_t i = 0; i < extra; ++i)
            bytes.push_back(static_cast<std::uint8_t>(rng.nextBelow(256)));
        break;
      }
      case 3: { // corrupt one table-entry field (id/offset/size/crc)
        if (entries == 0)
            break;
        const std::size_t e =
            kHeader + static_cast<std::size_t>(rng.nextBelow(entries)) *
                          kEntry;
        switch (rng.nextBelow(4)) {
          case 0: // id: unknown, duplicate-prone, or zero
            putU32(bytes, e, static_cast<std::uint32_t>(rng.nextBelow(16)));
            break;
          case 1: { // offset: small shifts and huge values
            const std::uint64_t off = getU64(bytes, e + 8);
            putU64(bytes, e + 8,
                   rng.nextBool(0.5) ? off + rng.nextBelow(32) - 16
                                     : rng.nextU64());
            break;
          }
          case 2: { // size: ditto
            const std::uint64_t size = getU64(bytes, e + 16);
            putU64(bytes, e + 16,
                   rng.nextBool(0.5) ? size + rng.nextBelow(32) - 16
                                     : rng.nextU64());
            break;
          }
          default: // crc
            putU32(bytes, e + 24,
                   static_cast<std::uint32_t>(rng.nextU64()));
            break;
        }
        break;
      }
      case 4: { // payload edit with the CRC re-fixed: reaches the decoders
        if (entries == 0)
            break;
        const std::size_t e =
            kHeader + static_cast<std::size_t>(rng.nextBelow(entries)) *
                          kEntry;
        const auto off = static_cast<std::size_t>(getU64(bytes, e + 8));
        const auto size = static_cast<std::size_t>(getU64(bytes, e + 16));
        if (off >= bytes.size() || size == 0 ||
            size > bytes.size() - off)
            break;
        const std::size_t edits = 1 + rng.nextBelow(4);
        for (std::size_t i = 0; i < edits; ++i) {
            const std::size_t pos =
                off + static_cast<std::size_t>(rng.nextBelow(size));
            if (rng.nextBool(0.5)) {
                bytes[pos] ^= static_cast<std::uint8_t>(
                    1u << rng.nextBelow(8));
            } else {
                bytes[pos] =
                    static_cast<std::uint8_t>(rng.nextBelow(256));
            }
        }
        refixCrc(bytes, e);
        break;
      }
      case 5: { // swap two whole table entries (a legal permutation)
        if (entries < 2)
            break;
        const std::size_t a =
            kHeader + static_cast<std::size_t>(rng.nextBelow(entries)) *
                          kEntry;
        const std::size_t b =
            kHeader + static_cast<std::size_t>(rng.nextBelow(entries)) *
                          kEntry;
        for (std::size_t i = 0; i < kEntry; ++i)
            std::swap(bytes[a + i], bytes[b + i]);
        break;
      }
      case 6: { // duplicate one entry over another (dup + missing ids)
        if (entries < 2)
            break;
        const std::size_t a =
            kHeader + static_cast<std::size_t>(rng.nextBelow(entries)) *
                          kEntry;
        const std::size_t b =
            kHeader + static_cast<std::size_t>(rng.nextBelow(entries)) *
                          kEntry;
        for (std::size_t i = 0; i < kEntry; ++i)
            bytes[b + i] = bytes[a + i];
        break;
      }
      case 7: { // make one section overlap another, CRC kept valid
        if (entries < 2)
            break;
        const std::size_t a =
            kHeader + static_cast<std::size_t>(rng.nextBelow(entries)) *
                          kEntry;
        const std::size_t b =
            kHeader + static_cast<std::size_t>(rng.nextBelow(entries)) *
                          kEntry;
        // Point b at a's bytes (same offset/size/crc, b's id kept): the
        // CRC layer passes, so only the overlap guard can reject this.
        putU64(bytes, b + 8, getU64(bytes, a + 8));
        putU64(bytes, b + 16, getU64(bytes, a + 16));
        putU32(bytes, b + 24, getU32(bytes, a + 24));
        break;
      }
      default: { // header surgery: version / section count
        if (n < kHeader)
            break;
        if (rng.nextBool(0.5))
            putU32(bytes, 8, static_cast<std::uint32_t>(rng.nextBelow(4)));
        else
            putU32(bytes, 12,
                   static_cast<std::uint32_t>(rng.nextBelow(64)));
        break;
      }
    }
}

struct FuzzTally
{
    std::size_t accepted = 0;
    std::size_t rejected = 0;
};

/**
 * Feed one mutant to both loaders. Anything other than success or
 * ModelError — and any accept/reject disagreement between the copying and
 * zero-copy paths — is a test failure.
 */
void
exerciseLoaders(const std::vector<std::uint8_t> &mutant, std::size_t iter,
                FuzzTally &tally)
{
    bool copy_ok = false;
    PhaseModel loaded;
    try {
        loaded = PhaseModel::loadFromBytes(mutant, "fuzz");
        copy_ok = true;
    } catch (const ModelError &) {
        // expected rejection
    } catch (const std::exception &e) {
        ADD_FAILURE() << "iteration " << iter
                      << ": loadFromBytes threw non-ModelError: "
                      << e.what();
        return;
    }

    bool view_ok = false;
    try {
        const PhaseModelView view =
            PhaseModelView::parse(mutant, "fuzz");
        view_ok = true;
        if (copy_ok) {
            // Both accepted: they must have decoded the same model.
            EXPECT_EQ(loaded.training_rows, view.meta().training_rows);
            EXPECT_EQ(loaded.columns(), view.columns());
            EXPECT_EQ(loaded.numClusters(), view.numClusters());
            EXPECT_EQ(
                loaded.loadings.maxAbsDiff(
                    stats::Matrix::fromView(view.loadings())),
                0.0);
        }
    } catch (const ModelError &) {
        // expected rejection
    } catch (const std::exception &e) {
        ADD_FAILURE() << "iteration " << iter
                      << ": PhaseModelView::parse threw non-ModelError: "
                      << e.what();
        return;
    }

    EXPECT_EQ(copy_ok, view_ok)
        << "iteration " << iter
        << ": copying and zero-copy loaders disagree on accept/reject";
    (copy_ok ? tally.accepted : tally.rejected) += 1;
}

void
fuzzCorpus(const std::vector<std::uint8_t> &pristine, std::uint64_t seed,
           std::size_t iterations, FuzzTally &tally)
{
    stats::Rng rng(seed);
    for (std::size_t iter = 0; iter < iterations; ++iter) {
        std::vector<std::uint8_t> mutant = pristine;
        // Usually one structured mutation; sometimes stack a second so
        // interactions between strategies get coverage too.
        mutate(mutant, rng);
        if (rng.nextBool(0.25))
            mutate(mutant, rng);
        exerciseLoaders(mutant, iter, tally);
    }
}

std::string
goldenPath()
{
    return std::string(MICAPHASE_TEST_DATA_DIR) +
           "/golden_phase_model_v1.bin";
}

TEST(PhaseModelFuzz, StructuredMutationsNeverEscapeModelError)
{
    // Corpus: the byte-locked packed golden fixture plus its aligned
    // resave (different offsets, padding gaps, aliasing-eligible layout).
    const std::vector<std::uint8_t> packed = readFile(goldenPath());
    ASSERT_GT(packed.size(), kHeader + 7 * kEntry);

    const std::string aligned_path = "/tmp/micaphase_fuzz_aligned.bin";
    PhaseModel::loadFromBytes(packed, "golden")
        .save(aligned_path, model::SaveOptions{.align_sections = true});
    const std::vector<std::uint8_t> aligned = readFile(aligned_path);
    std::remove(aligned_path.c_str());
    ASSERT_GT(aligned.size(), packed.size() - 1);

    FuzzTally tally;
    fuzzCorpus(packed, 0x5eed0001, 1500, tally);
    fuzzCorpus(aligned, 0x5eed0002, 1000, tally);

    // Non-vacuity: a fuzzer whose mutants all die at the first CRC check
    // (or all survive) is not exercising anything. The entry-swap and
    // benign-payload-edit strategies guarantee real accepts; everything
    // else guarantees real rejects.
    EXPECT_GT(tally.accepted, 0u) << "no mutant ever loaded cleanly";
    EXPECT_GT(tally.rejected, 50u) << "almost nothing was rejected";
    EXPECT_EQ(tally.accepted + tally.rejected, 2500u);
}

TEST(PhaseModelFuzz, DegenerateImagesAreRejectedNotCrashed)
{
    // Boundary images that skip the mutation machinery entirely.
    std::vector<std::vector<std::uint8_t>> images;
    images.push_back({});                                   // empty
    images.push_back({'M'});                                // 1 byte
    images.push_back(std::vector<std::uint8_t>(kHeader, 0)); // zero header
    // Valid magic + version, section count claiming more than fits.
    {
        std::vector<std::uint8_t> b(kHeader, 0);
        const char magic[8] = {'M', 'I', 'C', 'A', 'P', 'H', 'M', 'D'};
        for (int i = 0; i < 8; ++i)
            b[static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(magic[i]);
        putU32(b, 8, 1);
        putU32(b, 12, 0xFFFFFFFFu);
        images.push_back(b);
    }
    for (std::size_t i = 0; i < images.size(); ++i) {
        EXPECT_THROW(
            (void)PhaseModel::loadFromBytes(images[i], "degenerate"),
            ModelError)
            << "image " << i;
        EXPECT_THROW((void)PhaseModelView::parse(images[i], "degenerate"),
                     ModelError)
            << "image " << i;
    }
}

} // namespace
