/**
 * @file
 * Tests for the live versioned phase model (src/model): ModelDelta
 * serialization and the v1/v2 version-stamping policy, ingest accounting
 * with redundancy filtering and drift gauges, bounded mini-batch
 * refinement (Hamerly-style inflated movement bounds + the re-train
 * signal), delta appends that preserve 8-byte alignment/zero-copy
 * eligibility, the keystone "refinement-off ingest + reload is bitwise
 * frozen" guarantee at threads 1/2/4, and the generation-tagged hot-swap
 * slot under concurrent readers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "model/live_model.hh"
#include "model/model_view.hh"
#include "model/phase_model.hh"
#include "model/reader.hh"
#include "model/update.hh"
#include "stats/matrix.hh"

namespace {

using namespace mica;
using model::ClusterKind;
using model::ModelDelta;
using model::ModelError;
using model::PhaseModel;
using model::PhaseModelView;

/**
 * A small fully hand-specified model, derived from test_model.cc's
 * tinyModel but with TWO prominent phases: each serialized ProminentPhase
 * is 20 bytes, so an even count keeps the PROMINENT section's raw matrix
 * payload 8-byte aligned — a requirement for the zero-copy assertions in
 * the delta-append regression below.
 */
PhaseModel
tinyModel()
{
    PhaseModel m;
    m.analysis_key = 0x0123456789abcdefULL;
    m.interval_instructions = 2000;
    m.samples_per_benchmark = 4;
    m.interval_scale = 0.5;
    m.pca_min_stddev = 1.0;
    m.seed = 42;
    m.training_rows = 6;
    m.benchmark_ids = {"SuiteA/one", "SuiteB/two"};
    m.benchmark_suites = {"SuiteA", "SuiteB"};
    m.suites = {"SuiteA", "SuiteB"};
    m.normalize_input = true;
    m.norm_mean = {0.5, -1.25, 3.0};
    m.norm_stddev = {1.5, 2.0, 0.0}; // third column is degenerate
    m.pca_explained = 0.875;
    m.eigenvalues = {2.5, 0.5, 0.125};
    m.loadings = stats::Matrix::fromRows(
        {{0.6, -0.8}, {0.8, 0.6}, {0.0, 0.0}});
    m.rescale_sd = {1.25, 0.75};
    m.centers = stats::Matrix::fromRows({{1.0, 0.0}, {-1.0, 0.5}});
    m.cluster_sizes = {4, 2};
    m.cluster_kinds = {ClusterKind::Mixed, ClusterKind::BenchmarkSpecific};
    m.suite_rows = {2, 2, 2, 0};
    m.prominent = {{0, 4.0 / 6.0, 1}, {1, 2.0 / 6.0, 3}};
    m.prominent_raw =
        stats::Matrix::fromRows({{0.1, 0.2, 0.3}, {-0.4, 0.5, 2.5}});
    m.key_characteristics = {0, 2};
    m.ga_fitness = 0.75;
    return m;
}

/** A coherent hand-made delta against tinyModel (k = 2, m = 2). */
ModelDelta
tinyDelta(const PhaseModel &m, std::uint32_t sequence, bool refined)
{
    ModelDelta d;
    d.sequence = sequence;
    d.base_analysis_key = m.analysis_key;
    d.ingested_rows = 5;
    d.accepted_rows = 4;
    d.deduped_rows = 1;
    d.dedup_threshold = 0.25;
    d.assign_counts = {3, 2};
    d.mean_distance = {0.5, 0.75};
    d.max_distance = {1.0, 1.5};
    d.total_variation = 0.1;
    d.global_mean_distance = 0.6;
    d.global_max_distance = 1.5;
    if (refined) {
        d.refined = true;
        d.refined_centers =
            stats::Matrix::fromRows({{1.01, -0.02}, {-1.0, 0.5}});
        d.center_drift = {0.03, 0.0};
        d.max_center_drift = 0.03;
        d.drift_threshold = 0.25;
        d.retrain_recommended = false;
    }
    return d;
}

/** Deterministic synthetic ingest rows in the model's raw space (p = 3). */
stats::Matrix
syntheticRows(std::size_t n, double spread)
{
    stats::Matrix rows(0, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i);
        const std::vector<double> row = {
            0.5 + spread * std::sin(0.7 * t),
            -1.25 + spread * std::cos(1.3 * t), 3.0 + 0.1 * t};
        rows.appendRow(row);
    }
    return rows;
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

std::uint32_t
getU32(const std::vector<std::uint8_t> &b, std::size_t pos)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(b[pos + i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::vector<std::uint8_t> &b, std::size_t pos)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(b[pos + i]) << (8 * i);
    return v;
}

void
expectDeltasEqual(const ModelDelta &a, const ModelDelta &b)
{
    EXPECT_EQ(a.sequence, b.sequence);
    EXPECT_EQ(a.base_analysis_key, b.base_analysis_key);
    EXPECT_EQ(a.ingested_rows, b.ingested_rows);
    EXPECT_EQ(a.accepted_rows, b.accepted_rows);
    EXPECT_EQ(a.deduped_rows, b.deduped_rows);
    EXPECT_EQ(a.dedup_threshold, b.dedup_threshold);
    EXPECT_EQ(a.assign_counts, b.assign_counts);
    EXPECT_EQ(a.mean_distance, b.mean_distance);
    EXPECT_EQ(a.max_distance, b.max_distance);
    EXPECT_EQ(a.total_variation, b.total_variation);
    EXPECT_EQ(a.global_mean_distance, b.global_mean_distance);
    EXPECT_EQ(a.global_max_distance, b.global_max_distance);
    EXPECT_EQ(a.refined, b.refined);
    EXPECT_EQ(a.refined_centers.maxAbsDiff(b.refined_centers), 0.0);
    EXPECT_EQ(a.center_drift, b.center_drift);
    EXPECT_EQ(a.max_center_drift, b.max_center_drift);
    EXPECT_EQ(a.drift_threshold, b.drift_threshold);
    EXPECT_EQ(a.retrain_recommended, b.retrain_recommended);
}

void
expectProjectionsBitwise(const model::Projection &a,
                         const model::Projection &b)
{
    ASSERT_EQ(a.assignment, b.assignment);
    ASSERT_EQ(a.reduced.rows(), b.reduced.rows());
    ASSERT_EQ(a.reduced.cols(), b.reduced.cols());
    EXPECT_EQ(std::memcmp(a.reduced.data().data(), b.reduced.data().data(),
                          a.reduced.data().size() * sizeof(double)),
              0);
    ASSERT_EQ(a.dist2.size(), b.dist2.size());
    EXPECT_EQ(std::memcmp(a.dist2.data(), b.dist2.data(),
                          a.dist2.size() * sizeof(double)),
              0);
}

// ------------------------------------------------------- delta format

TEST(ModelUpdateFormat, DeltaRoundTripIsExact)
{
    const std::string path = "/tmp/micaphase_update_roundtrip.bin";
    PhaseModel m = tinyModel();
    m.deltas.push_back(tinyDelta(m, 1, false));
    m.deltas.push_back(tinyDelta(m, 2, true));
    m.save(path);

    const PhaseModel loaded = PhaseModel::load(path);
    ASSERT_EQ(loaded.deltas.size(), 2u);
    expectDeltasEqual(m.deltas[0], loaded.deltas[0]);
    expectDeltasEqual(m.deltas[1], loaded.deltas[1]);

    // Both loaders decode the identical history (shared format code).
    const PhaseModelView view = PhaseModelView::open(path);
    ASSERT_EQ(view.meta().deltas.size(), 2u);
    expectDeltasEqual(m.deltas[0], view.meta().deltas[0]);
    expectDeltasEqual(m.deltas[1], view.meta().deltas[1]);
    std::remove(path.c_str());
}

TEST(ModelUpdateFormat, ResaveWithDeltasIsByteIdentical)
{
    const std::string a = "/tmp/micaphase_update_resave_a.bin";
    const std::string b = "/tmp/micaphase_update_resave_b.bin";
    PhaseModel m = tinyModel();
    m.deltas.push_back(tinyDelta(m, 1, true));
    m.save(a);
    PhaseModel::load(a).save(b);
    EXPECT_EQ(readFile(a), readFile(b));
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(ModelUpdateFormat, DeltaPromotesFileToVersion2)
{
    const std::string path = "/tmp/micaphase_update_version.bin";

    // Delta-free models keep stamping the base version: the golden v1
    // fixture (and every pre-delta artifact) stays valid and byte-locked.
    tinyModel().save(path);
    std::vector<std::uint8_t> bytes = readFile(path);
    ASSERT_GE(bytes.size(), 16u);
    EXPECT_EQ(getU32(bytes, 8), model::kBaseFormatVersion);

    // A delta-bearing file is stamped v2, so a pre-delta reader (which
    // would silently ignore the unknown section id) fails loudly on the
    // version gate instead of serving stale history.
    PhaseModel m = tinyModel();
    m.deltas.push_back(tinyDelta(m, 1, false));
    m.save(path);
    bytes = readFile(path);
    EXPECT_EQ(getU32(bytes, 8), model::kFormatVersion);

    // And a version from the future is rejected by both loaders.
    bytes[8] = static_cast<std::uint8_t>(model::kFormatVersion + 1);
    EXPECT_THROW((void)PhaseModel::loadFromBytes(bytes, "future"),
                 ModelError);
    EXPECT_THROW((void)PhaseModelView::parse(bytes, "future"), ModelError);
    std::remove(path.c_str());
}

TEST(ModelUpdateFormat, ValidateRejectsIncoherentDeltas)
{
    PhaseModel m = tinyModel();

    m.deltas = {tinyDelta(m, 0, false)}; // sequence must start above 0
    EXPECT_THROW(m.validate(), ModelError);

    m.deltas = {tinyDelta(m, 2, false), tinyDelta(m, 2, false)};
    EXPECT_THROW(m.validate(), ModelError); // not strictly increasing

    m.deltas = {tinyDelta(m, 1, false)};
    m.deltas[0].base_analysis_key ^= 1; // foreign base model
    EXPECT_THROW(m.validate(), ModelError);

    m.deltas = {tinyDelta(m, 1, false)};
    m.deltas[0].deduped_rows += 1; // ingested != accepted + deduped
    EXPECT_THROW(m.validate(), ModelError);

    m.deltas = {tinyDelta(m, 1, false)};
    m.deltas[0].assign_counts = {5}; // wrong k
    EXPECT_THROW(m.validate(), ModelError);

    m.deltas = {tinyDelta(m, 1, false)};
    m.deltas[0].assign_counts = {4, 2}; // sum != ingested_rows
    EXPECT_THROW(m.validate(), ModelError);

    m.deltas = {tinyDelta(m, 1, true)};
    m.deltas[0].center_drift.pop_back(); // refined but drift not k-sized
    EXPECT_THROW(m.validate(), ModelError);

    m.deltas = {tinyDelta(m, 1, false)};
    m.deltas[0].refined_centers =
        stats::Matrix::fromRows({{1.0, 0.0}}); // unrefined but centers set
    EXPECT_THROW(m.validate(), ModelError);

    m.deltas = {tinyDelta(m, 1, false), tinyDelta(m, 2, true)};
    EXPECT_NO_THROW(m.validate()); // the coherent shapes pass
}

// ------------------------------------------------------------- ingest

TEST(ModelUpdateIngest, ObservationOnlyIsThreadInvariantAndFrozenBitwise)
{
    const std::string path = "/tmp/micaphase_update_frozen.bin";
    const PhaseModel m = tinyModel();
    m.save(path);
    const stats::Matrix rows = syntheticRows(48, 2.0);
    const model::Projection oracle = m.placeBatch(rows);

    ModelDelta first;
    for (unsigned threads : {1u, 2u, 4u}) {
        const auto reader = model::open(path, {model::OpenMode::Copy});
        model::UpdateOptions opts;
        opts.project.threads = threads;
        opts.project.block_rows = 7;
        model::ModelUpdater updater(*reader, opts);
        const model::IngestBatch batch = updater.ingest(rows);

        // No threshold: every row is accepted, none dropped.
        EXPECT_EQ(batch.rows, 48u);
        EXPECT_EQ(batch.accepted, 48u);
        EXPECT_EQ(batch.deduped, 0u);
        expectProjectionsBitwise(batch.projection, oracle);

        const ModelDelta d = updater.delta(1);
        EXPECT_EQ(d.ingested_rows, 48u);
        EXPECT_FALSE(d.refined);
        EXPECT_TRUE(d.refined_centers.rows() == 0);
        std::uint64_t total = 0;
        for (std::uint64_t c : d.assign_counts)
            total += c;
        EXPECT_EQ(total, 48u);
        if (threads == 1)
            first = d;
        else
            expectDeltasEqual(first, d); // bit-identical at any threading
    }

    // Keystone: append the observation-only delta and reload — placement
    // through the updated file stays bitwise frozen on both loaders at
    // every thread count.
    const auto reader = model::open(path, {model::OpenMode::Copy});
    model::ModelUpdater updater(*reader, {});
    (void)updater.ingest(rows);
    model::appendDelta(path, updater.delta());

    for (const model::OpenMode mode :
         {model::OpenMode::Copy, model::OpenMode::Mmap}) {
        const auto reloaded = model::open(path, {mode});
        ASSERT_EQ(reloaded->meta().deltas.size(), 1u);
        EXPECT_EQ(reloaded->meta().deltas[0].sequence, 1u);
        for (unsigned threads : {1u, 2u, 4u}) {
            stats::ProjectOptions popts;
            popts.threads = threads;
            expectProjectionsBitwise(reloaded->placeBatch(rows, popts),
                                     oracle);
        }
    }
    std::remove(path.c_str());
}

TEST(ModelUpdateIngest, DedupAccountingMatchesThresholdRule)
{
    const auto reader = model::makeReader(tinyModel());
    const stats::Matrix rows = syntheticRows(40, 3.0);

    // Pass 1 (no threshold) observes the distance distribution.
    model::ModelUpdater observe(*reader, {});
    const model::IngestBatch all = observe.ingest(rows);
    std::vector<double> dist;
    for (double d2 : all.projection.dist2)
        dist.push_back(std::sqrt(d2));
    std::vector<double> sorted = dist;
    std::sort(sorted.begin(), sorted.end());
    const double threshold = sorted[sorted.size() / 2];

    // Pass 2 applies it; the drop set must be exactly the rule's.
    model::UpdateOptions opts;
    opts.dedup_threshold = threshold;
    model::ModelUpdater updater(*reader, opts);
    const model::IngestBatch batch = updater.ingest(rows);
    std::size_t want_dropped = 0;
    for (std::size_t r = 0; r < dist.size(); ++r) {
        const bool redundant = dist[r] <= threshold;
        want_dropped += redundant ? 1 : 0;
        EXPECT_EQ(batch.accepted_mask[r], redundant ? 0 : 1) << "row " << r;
    }
    EXPECT_GT(want_dropped, 0u);
    EXPECT_LT(want_dropped, rows.rows());
    EXPECT_EQ(batch.deduped, want_dropped);
    EXPECT_EQ(batch.accepted, rows.rows() - want_dropped);

    // Dropped rows still count in every gauge: the delta's population
    // tallies cover all ingested rows, not just the accepted ones.
    const ModelDelta d = updater.delta(1);
    EXPECT_EQ(d.ingested_rows, rows.rows());
    EXPECT_EQ(d.accepted_rows, rows.rows() - want_dropped);
    EXPECT_EQ(d.deduped_rows, want_dropped);
    std::uint64_t total = 0;
    for (std::uint64_t c : d.assign_counts)
        total += c;
    EXPECT_EQ(total, rows.rows());
    EXPECT_GE(d.total_variation, 0.0);
    EXPECT_LE(d.total_variation, 1.0);
    EXPECT_EQ(d.global_max_distance, sorted.back());
    for (std::size_t c = 0; c < d.mean_distance.size(); ++c)
        EXPECT_LE(d.mean_distance[c], d.max_distance[c]) << "cluster " << c;
}

// --------------------------------------------------------- refinement

TEST(ModelUpdateRefine, DriftIsBoundedAndIdleCentersStayFrozen)
{
    const PhaseModel m = tinyModel();
    const auto reader = model::makeReader(tinyModel());
    model::UpdateOptions opts;
    opts.refine = true;
    opts.drift_threshold = 100.0; // far above any movement here
    model::ModelUpdater updater(*reader, opts);
    (void)updater.ingest(syntheticRows(32, 1.5));

    const ModelDelta d = updater.delta(1);
    ASSERT_TRUE(d.refined);
    ASSERT_EQ(d.refined_centers.rows(), m.numClusters());
    ASSERT_EQ(d.center_drift.size(), m.numClusters());
    double max_seen = 0.0;
    for (std::size_t c = 0; c < m.numClusters(); ++c) {
        const double exact = stats::euclideanDistance(
            d.refined_centers.row(c), m.centers.row(c));
        // The reported drift is a certified (inflated) upper bound on the
        // exact Euclidean movement — the Hamerly bound discipline.
        EXPECT_LE(exact, d.center_drift[c]) << "cluster " << c;
        if (d.assign_counts[c] == 0) {
            // No traffic: the frozen center must survive bit-for-bit.
            EXPECT_EQ(std::memcmp(d.refined_centers.row(c).data(),
                                  m.centers.row(c).data(),
                                  m.components() * sizeof(double)),
                      0);
            EXPECT_EQ(d.center_drift[c], 0.0);
        }
        max_seen = std::max(max_seen, d.center_drift[c]);
    }
    EXPECT_EQ(d.max_center_drift, max_seen);
    EXPECT_FALSE(d.retrain_recommended);
}

TEST(ModelUpdateRefine, RetrainSignalFiresOnOutOfSpaceIntervals)
{
    const auto reader = model::makeReader(tinyModel());
    model::UpdateOptions opts;
    opts.refine = true;
    opts.drift_threshold = 0.25;
    model::ModelUpdater updater(*reader, opts);
    // Rows far outside the training distribution: placement still works
    // (nearest frozen center), but the weighted-mean refinement drags
    // centers past the drift threshold.
    stats::Matrix rows(0, 0);
    for (std::size_t i = 0; i < 24; ++i) {
        const double t = static_cast<double>(i);
        const std::vector<double> row = {40.0 + t, -60.0 - 2.0 * t, 3.0};
        rows.appendRow(row);
    }
    (void)updater.ingest(rows);

    const ModelDelta d = updater.delta(1);
    ASSERT_TRUE(d.refined);
    EXPECT_GT(d.max_center_drift, opts.drift_threshold);
    EXPECT_TRUE(d.retrain_recommended);
    EXPECT_EQ(d.drift_threshold, opts.drift_threshold);
}

// ------------------------------------------------------ delta appends

TEST(ModelUpdateAppend, AppendedDeltasKeepAlignmentAndZeroCopy)
{
    const std::string path = "/tmp/micaphase_update_aligned.bin";
    model::SaveOptions aligned;
    aligned.align_sections = true;
    tinyModel().save(path, aligned);
    ASSERT_TRUE(PhaseModelView::open(path).zeroCopy());

    // Two appends through the public API, both keeping aligned layout.
    const auto reader = model::open(path, {model::OpenMode::Copy});
    model::ModelUpdater updater(*reader, {});
    (void)updater.ingest(syntheticRows(16, 1.0));
    model::appendDelta(path, updater.delta(), aligned);
    (void)updater.ingest(syntheticRows(16, 2.0));
    model::appendDelta(path, updater.delta(), aligned);

    // Regression: every section of the rewritten file — including both
    // delta sections — still starts on an 8-byte boundary, so the file
    // stays zero-copy eligible after any number of appends.
    const std::vector<std::uint8_t> bytes = readFile(path);
    const std::uint32_t sections = getU32(bytes, 12);
    ASSERT_GE(sections, 9u); // 7 required + 2 deltas
    std::size_t delta_sections = 0;
    for (std::uint32_t e = 0; e < sections; ++e) {
        const std::size_t entry = 16 + static_cast<std::size_t>(e) * 32;
        EXPECT_EQ(getU64(bytes, entry + 8) % 8, 0u)
            << "section " << getU32(bytes, entry) << " misaligned";
        delta_sections += getU32(bytes, entry) == 8 ? 1 : 0;
    }
    EXPECT_EQ(delta_sections, 2u);

    const PhaseModelView view = PhaseModelView::open(path);
    EXPECT_TRUE(view.zeroCopy());
    ASSERT_EQ(view.meta().deltas.size(), 2u);
    EXPECT_EQ(view.meta().deltas[0].sequence, 1u);
    EXPECT_EQ(view.meta().deltas[1].sequence, 2u);
    EXPECT_EQ(view.meta().deltas[1].ingested_rows, 32u); // cumulative
    std::remove(path.c_str());
}

TEST(ModelUpdateAppend, RejectsForeignBaseAndStaleSequence)
{
    const std::string path = "/tmp/micaphase_update_reject.bin";
    const PhaseModel m = tinyModel();
    m.save(path);

    ModelDelta foreign = tinyDelta(m, 1, false);
    foreign.base_analysis_key ^= 0xdeadbeefULL;
    EXPECT_THROW(model::appendDelta(path, foreign), ModelError);

    model::appendDelta(path, tinyDelta(m, 5, false));
    EXPECT_THROW(model::appendDelta(path, tinyDelta(m, 5, false)),
                 ModelError); // equal sequence
    EXPECT_THROW(model::appendDelta(path, tinyDelta(m, 3, false)),
                 ModelError); // going backwards
    model::appendDelta(path, tinyDelta(m, 0, true)); // 0 = assign next
    const PhaseModel loaded = PhaseModel::load(path);
    ASSERT_EQ(loaded.deltas.size(), 2u);
    EXPECT_EQ(loaded.deltas[1].sequence, 6u);
    std::remove(path.c_str());
}

// ----------------------------------------------------------- hot swap

TEST(ModelHotSwap, SnapshotIsEmptyBeforeFirstPublish)
{
    model::LiveModel live;
    EXPECT_EQ(live.generation(), 0u);
    const model::LiveModel::Snapshot snap = live.current();
    EXPECT_FALSE(snap);
    EXPECT_EQ(snap.generation, 0u);
}

TEST(ModelHotSwap, FailedReloadKeepsOldGenerationServing)
{
    const std::string good = "/tmp/micaphase_swap_good.bin";
    const std::string bad = "/tmp/micaphase_swap_bad.bin";
    tinyModel().save(good);
    {
        std::ofstream out(bad, std::ios::binary | std::ios::trunc);
        out << "not a model";
    }

    model::LiveModel live;
    EXPECT_EQ(live.load(good), 1u);
    EXPECT_THROW((void)live.load(bad), ModelError);
    EXPECT_EQ(live.generation(), 1u);
    const model::LiveModel::Snapshot snap = live.current();
    ASSERT_TRUE(snap);
    EXPECT_EQ(snap.reader->numClusters(), 2u);
    std::remove(good.c_str());
    std::remove(bad.c_str());
}

/**
 * The soak: one writer hammers publish() while 8 reader threads take
 * snapshots and place the same batch. Every reply must be bitwise equal
 * to the oracle of the generation its snapshot reports — a snapshot
 * never serves a torn or cross-generation model, and in-flight batches
 * finish on the generation they started on even while the slot swaps.
 * (Runs under TSan in CI via the Update|Swap suite filter.)
 */
TEST(ModelHotSwap, ConcurrentReadersNeverObserveMixedGenerations)
{
    PhaseModel model_a = tinyModel();
    PhaseModel model_b = tinyModel();
    // Distinct centers: the two generations place rows differently, so a
    // cross-generation read cannot accidentally pass the bitwise check.
    model_b.centers = stats::Matrix::fromRows({{2.5, -1.0}, {0.0, 4.0}});

    const stats::Matrix rows = syntheticRows(64, 2.0);
    const model::Projection oracle_a = model_a.placeBatch(rows);
    const model::Projection oracle_b = model_b.placeBatch(rows);
    ASSERT_NE(oracle_a.assignment, oracle_b.assignment)
        << "generations must disagree for the soak to mean anything";

    model::LiveModel live;
    live.publish(model::makeReader(PhaseModel(model_a))); // generation 1

    constexpr std::uint64_t kGenerations = 40;
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> mismatches{0};
    std::atomic<std::uint64_t> empty_snapshots{0};

    std::vector<std::thread> readers;
    readers.reserve(8);
    for (int t = 0; t < 8; ++t) {
        readers.emplace_back([&] {
            stats::ProjectOptions popts;
            popts.threads = 1;
            popts.block_rows = 16;
            while (!stop.load(std::memory_order_acquire)) {
                const model::LiveModel::Snapshot snap = live.current();
                if (!snap) {
                    empty_snapshots.fetch_add(1);
                    continue;
                }
                const model::Projection got =
                    snap.reader->placeBatch(rows, popts);
                // Generation parity picks the oracle: odd = A, even = B.
                const model::Projection &want =
                    snap.generation % 2 == 1 ? oracle_a : oracle_b;
                const bool ok =
                    got.assignment == want.assignment &&
                    std::memcmp(got.dist2.data(), want.dist2.data(),
                                want.dist2.size() * sizeof(double)) == 0 &&
                    std::memcmp(got.reduced.data().data(),
                                want.reduced.data().data(),
                                want.reduced.data().size() *
                                    sizeof(double)) == 0;
                if (!ok)
                    mismatches.fetch_add(1);
                batches.fetch_add(1);
            }
        });
    }

    for (std::uint64_t g = 2; g <= kGenerations; ++g) {
        const PhaseModel &next = g % 2 == 1 ? model_a : model_b;
        EXPECT_EQ(live.publish(model::makeReader(PhaseModel(next))), g);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    stop.store(true, std::memory_order_release);
    for (std::thread &t : readers)
        t.join();

    EXPECT_EQ(mismatches.load(), 0u);
    EXPECT_EQ(empty_snapshots.load(), 0u); // published before spawning
    EXPECT_GT(batches.load(), 0u);
    EXPECT_EQ(live.generation(), kGenerations);
}

/**
 * The ANN flavour of the soak: with enableAnn(), every publish must swap
 * the index atomically with the reader — a snapshot may never pair a
 * model with a stale index. Checked structurally (the index's generation
 * tag and its center view must both belong to this snapshot's reader)
 * and behaviourally (placement through the snapshot's own index is
 * bitwise equal to the per-generation oracle; at this k every node is an
 * entry point, so the search is exhaustive-exact and any deviation means
 * a stale index was consulted). Runs under TSan via the Swap filter.
 */
TEST(ModelHotSwap, AnnIndexSwapsAtomicallyWithGeneration)
{
    PhaseModel model_a = tinyModel();
    PhaseModel model_b = tinyModel();
    model_b.centers = stats::Matrix::fromRows({{2.5, -1.0}, {0.0, 4.0}});

    const stats::Matrix rows = syntheticRows(64, 2.0);

    mica::ann::BuildOptions bopts;
    bopts.min_graph_size = 1; // force the graph path at k = 2

    // Per-generation oracles, each through its own index.
    const auto oracle_for = [&](const PhaseModel &m) {
        const auto reader = model::makeReader(PhaseModel(m));
        const mica::ann::CenterIndex idx =
            mica::ann::CenterIndex::build(reader->centers(), bopts);
        stats::ProjectOptions popts;
        popts.finder = &idx;
        return reader->placeBatch(rows, popts);
    };
    const model::Projection oracle_a = oracle_for(model_a);
    const model::Projection oracle_b = oracle_for(model_b);
    ASSERT_NE(oracle_a.assignment, oracle_b.assignment)
        << "generations must disagree for the soak to mean anything";

    model::LiveModel live;
    live.enableAnn(bopts);
    live.publish(model::makeReader(PhaseModel(model_a))); // generation 1

    constexpr std::uint64_t kGenerations = 40;
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> mismatches{0};
    std::atomic<std::uint64_t> stale_indexes{0};

    std::vector<std::thread> readers;
    readers.reserve(8);
    for (int t = 0; t < 8; ++t) {
        readers.emplace_back([&] {
            stats::ProjectOptions popts;
            popts.threads = 1;
            popts.block_rows = 16;
            while (!stop.load(std::memory_order_acquire)) {
                const model::LiveModel::Snapshot snap = live.current();
                if (!snap)
                    continue;
                // The invariant under test: the index travels with the
                // snapshot — same generation tag, built over exactly
                // this reader's center bytes.
                if (snap.index == nullptr ||
                    snap.index->generation() != snap.generation ||
                    snap.index->centers().data() !=
                        snap.reader->centers().data()) {
                    stale_indexes.fetch_add(1);
                    continue;
                }
                popts.finder = snap.index.get();
                const model::Projection got =
                    snap.reader->placeBatch(rows, popts);
                const model::Projection &want =
                    snap.generation % 2 == 1 ? oracle_a : oracle_b;
                const bool ok =
                    got.assignment == want.assignment &&
                    std::memcmp(got.dist2.data(), want.dist2.data(),
                                want.dist2.size() * sizeof(double)) == 0;
                if (!ok)
                    mismatches.fetch_add(1);
                batches.fetch_add(1);
            }
        });
    }

    for (std::uint64_t g = 2; g <= kGenerations; ++g) {
        const PhaseModel &next = g % 2 == 1 ? model_a : model_b;
        EXPECT_EQ(live.publish(model::makeReader(PhaseModel(next))), g);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    stop.store(true, std::memory_order_release);
    for (std::thread &t : readers)
        t.join();

    EXPECT_EQ(stale_indexes.load(), 0u);
    EXPECT_EQ(mismatches.load(), 0u);
    EXPECT_GT(batches.load(), 0u);
    EXPECT_EQ(live.generation(), kGenerations);
}

} // namespace
