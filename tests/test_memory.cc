/**
 * @file
 * Unit tests for the sparse paged VM memory.
 */

#include <gtest/gtest.h>

#include "vm/memory.hh"

namespace {

using mica::vm::Memory;

TEST(Memory, ZeroFilledOnFirstTouch)
{
    Memory mem;
    EXPECT_EQ(mem.read(0x1234, 8), 0u);
    EXPECT_EQ(mem.pagesAllocated(), 0u) << "reads must not allocate";
}

TEST(Memory, ReadBackWrites)
{
    Memory mem;
    mem.write(0x1000, 0xdeadbeefcafebabeULL, 8);
    EXPECT_EQ(mem.read(0x1000, 8), 0xdeadbeefcafebabeULL);
}

TEST(Memory, PartialWidths)
{
    Memory mem;
    mem.write(0x2000, 0x1122334455667788ULL, 8);
    EXPECT_EQ(mem.read(0x2000, 1), 0x88u);
    EXPECT_EQ(mem.read(0x2000, 2), 0x7788u);
    EXPECT_EQ(mem.read(0x2000, 4), 0x55667788u);
    EXPECT_EQ(mem.read(0x2004, 4), 0x11223344u);
}

TEST(Memory, WriteNarrowPreservesNeighbours)
{
    Memory mem;
    mem.write(0x3000, 0xffffffffffffffffULL, 8);
    mem.write(0x3002, 0x00, 1);
    EXPECT_EQ(mem.read(0x3000, 8), 0xffffffffff00ffffULL);
}

TEST(Memory, CrossPageAccess)
{
    Memory mem;
    const std::uint64_t addr = mica::vm::kPageBytes - 4;
    mem.write(addr, 0x0123456789abcdefULL, 8);
    EXPECT_EQ(mem.read(addr, 8), 0x0123456789abcdefULL);
    EXPECT_EQ(mem.pagesAllocated(), 2u);
}

TEST(Memory, Doubles)
{
    Memory mem;
    mem.writeDouble(0x4000, -3.25);
    EXPECT_DOUBLE_EQ(mem.readDouble(0x4000), -3.25);
}

TEST(Memory, BulkReadWrite)
{
    Memory mem;
    std::vector<std::uint8_t> data{1, 2, 3, 4, 5, 6, 7};
    mem.writeBytes(0x5000, data);
    std::vector<std::uint8_t> out(7);
    mem.readBytes(0x5000, out);
    EXPECT_EQ(out, data);
}

TEST(Memory, SparseAllocation)
{
    Memory mem;
    mem.write(0x0, 1, 1);
    mem.write(0x100000000ULL, 1, 1); // 4 GiB away
    EXPECT_EQ(mem.pagesAllocated(), 2u);
}

TEST(Memory, ClearDropsEverything)
{
    Memory mem;
    mem.write(0x9000, 77, 8);
    mem.clear();
    EXPECT_EQ(mem.pagesAllocated(), 0u);
    EXPECT_EQ(mem.read(0x9000, 8), 0u);
}

TEST(Memory, HighAddresses)
{
    Memory mem;
    const std::uint64_t addr = 0xfffffffffff0ULL;
    mem.write(addr, 42, 8);
    EXPECT_EQ(mem.read(addr, 8), 42u);
}

} // namespace
