/**
 * @file
 * CFG construction, dominators, natural loops, dataflow and static
 * features on hand-assembled programs.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "analysis/static_features.hh"
#include "workloads/program_builder.hh"

namespace {

using namespace mica;
using analysis::buildCfg;
using analysis::Cfg;
using isa::Opcode;
using workloads::Label;
using workloads::ProgramBuilder;

/** li / loop-decrement / halt: two blocks plus a self-loop. */
isa::Program
countdownProgram()
{
    ProgramBuilder pb("countdown");
    pb.li(5, 10);
    Label top = pb.newLabel();
    pb.bind(top);
    pb.alui(Opcode::Addi, 5, 5, -1);
    pb.branch(Opcode::Bne, 5, isa::kRegZero, top);
    pb.halt();
    return pb.build();
}

TEST(Cfg, StraightLineIsOneBlock)
{
    ProgramBuilder pb("straight");
    pb.li(5, 1);
    pb.li(6, 2);
    pb.alu(Opcode::Add, 7, 5, 6);
    pb.halt();
    const isa::Program program = pb.build();
    const Cfg cfg = buildCfg(program);
    ASSERT_EQ(cfg.blocks.size(), 1u);
    EXPECT_EQ(cfg.blocks[0].first, 0u);
    EXPECT_EQ(cfg.blocks[0].last, 3u);
    EXPECT_TRUE(cfg.blocks[0].succs.empty());
    EXPECT_TRUE(cfg.reachable[0]);
    EXPECT_FALSE(cfg.blocks[0].falls_off_end);
}

TEST(Cfg, EmptyProgram)
{
    const isa::Program empty{};
    const Cfg cfg = buildCfg(empty);
    EXPECT_TRUE(cfg.blocks.empty());
    EXPECT_TRUE(cfg.rpo.empty());
}

TEST(Cfg, LoopBlocksAndEdges)
{
    const isa::Program program = countdownProgram();
    const Cfg cfg = buildCfg(program);
    // Blocks: [li], [addi+bne], [halt].
    ASSERT_EQ(cfg.blocks.size(), 3u);
    EXPECT_EQ(cfg.blocks[1].succs.size(), 2u); // taken + fallthrough
    // The loop block is its own predecessor.
    EXPECT_NE(std::find(cfg.blocks[1].preds.begin(),
                        cfg.blocks[1].preds.end(), 1u),
              cfg.blocks[1].preds.end());
    EXPECT_EQ(cfg.rpo.size(), 3u);
    EXPECT_EQ(cfg.rpo.front(), cfg.entryBlock());
}

TEST(Cfg, CallHasCalleeAndReturnSiteEdges)
{
    ProgramBuilder pb("call");
    Label main = pb.newLabel();
    pb.jump(main);
    Label sub = pb.newLabel();
    pb.bind(sub);
    pb.li(5, 7);
    pb.ret();
    pb.bind(main);
    pb.call(sub);
    pb.halt();
    const isa::Program program = pb.build();
    const Cfg cfg = buildCfg(program);

    // jump / sub body / call / halt.
    ASSERT_EQ(cfg.blocks.size(), 4u);
    bool saw_call = false, saw_return_site = false;
    for (const analysis::Edge &e : cfg.edges) {
        saw_call |= e.kind == analysis::EdgeKind::Call;
        saw_return_site |= e.kind == analysis::EdgeKind::ReturnSite;
    }
    EXPECT_TRUE(saw_call);
    EXPECT_TRUE(saw_return_site);
    // The callee ends in ret with no static successors.
    EXPECT_TRUE(cfg.blocks[1].ends_in_return);
    EXPECT_TRUE(cfg.blocks[1].succs.empty());
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b)
        EXPECT_TRUE(cfg.reachable[b]) << "block " << b;
}

TEST(Cfg, AddressTakenBlocksRecoveredFromLabelTables)
{
    ProgramBuilder pb("dispatch");
    Label main = pb.newLabel();
    pb.jump(main);
    Label handler = pb.newLabel();
    pb.bind(handler);
    pb.li(6, 1);
    pb.ret();
    pb.bind(main);
    const Label handlers[1] = {handler};
    const std::uint64_t table = pb.allocLabelTable(handlers);
    pb.load(Opcode::Ld, 5, isa::kRegZero,
            static_cast<std::int64_t>(table));
    pb.callIndirect(5);
    pb.halt();
    const isa::Program program = pb.build();
    const Cfg cfg = buildCfg(program);

    ASSERT_EQ(cfg.address_taken.size(), 1u);
    EXPECT_EQ(cfg.blocks[cfg.address_taken[0]].first,
              program.indexOf(program.code_base + isa::kInstrBytes));
    // Handler reachable through the recovered indirect call edge.
    EXPECT_TRUE(cfg.reachable[cfg.address_taken[0]]);
}

TEST(Dominators, LoopHeaderDominatesLatch)
{
    const isa::Program program = countdownProgram();
    const Cfg cfg = buildCfg(program);
    const analysis::DominatorTree doms = analysis::computeDominators(cfg);
    EXPECT_TRUE(doms.dominates(0, 1));
    EXPECT_TRUE(doms.dominates(0, 2));
    EXPECT_TRUE(doms.dominates(1, 2));
    EXPECT_FALSE(doms.dominates(2, 1));
    EXPECT_EQ(doms.idom[cfg.entryBlock()], cfg.entryBlock());
}

TEST(Dominators, DiamondJoinDominatedByFork)
{
    ProgramBuilder pb("diamond");
    Label else_arm = pb.newLabel(), join = pb.newLabel();
    pb.li(5, 1);
    pb.branch(Opcode::Beq, 5, isa::kRegZero, else_arm); // block 0
    pb.li(6, 1);                                        // then, block 1
    pb.jump(join);
    pb.bind(else_arm);
    pb.li(6, 2);                                        // else, block 2
    pb.bind(join);
    pb.halt();                                          // join, block 3
    const isa::Program program = pb.build();
    const Cfg cfg = buildCfg(program);
    ASSERT_EQ(cfg.blocks.size(), 4u);
    const analysis::DominatorTree doms = analysis::computeDominators(cfg);
    EXPECT_EQ(doms.idom[3], 0u); // join's idom is the fork, not an arm
    EXPECT_FALSE(doms.dominates(1, 3));
    EXPECT_FALSE(doms.dominates(2, 3));
}

TEST(Loops, SingleLoopDetectedWithExit)
{
    const isa::Program program = countdownProgram();
    const Cfg cfg = buildCfg(program);
    const auto loops =
        analysis::findNaturalLoops(cfg, analysis::computeDominators(cfg));
    ASSERT_EQ(loops.size(), 1u);
    EXPECT_EQ(loops[0].header, 1u);
    EXPECT_EQ(loops[0].latch, 1u);
    EXPECT_EQ(loops[0].depth, 1u);
    EXPECT_TRUE(loops[0].has_exit);
    EXPECT_TRUE(loops[0].contains(1));
    EXPECT_FALSE(loops[0].contains(0));
}

TEST(Loops, NestingDepthComputed)
{
    ProgramBuilder pb("nest");
    pb.li(5, 3);
    Label outer = pb.newLabel();
    pb.bind(outer);
    pb.li(6, 4);
    Label inner = pb.newLabel();
    pb.bind(inner);
    pb.alui(Opcode::Addi, 6, 6, -1);
    pb.branch(Opcode::Bne, 6, isa::kRegZero, inner);
    pb.alui(Opcode::Addi, 5, 5, -1);
    pb.branch(Opcode::Bne, 5, isa::kRegZero, outer);
    pb.halt();
    const isa::Program program = pb.build();
    const Cfg cfg = buildCfg(program);
    const auto loops =
        analysis::findNaturalLoops(cfg, analysis::computeDominators(cfg));
    ASSERT_EQ(loops.size(), 2u);
    std::size_t max_depth = 0;
    for (const auto &loop : loops)
        max_depth = std::max(max_depth, loop.depth);
    EXPECT_EQ(max_depth, 2u);
}

TEST(Loops, InfiniteLoopHasNoExit)
{
    ProgramBuilder pb("forever");
    Label top = pb.newLabel();
    pb.bind(top);
    pb.alui(Opcode::Addi, 5, 5, 1);
    pb.jump(top);
    const isa::Program program = pb.build();
    const Cfg cfg = buildCfg(program);
    const auto loops =
        analysis::findNaturalLoops(cfg, analysis::computeDominators(cfg));
    ASSERT_EQ(loops.size(), 1u);
    EXPECT_FALSE(loops[0].has_exit);
}

TEST(Dataflow, PossibleDefsFlowThroughCallEdges)
{
    ProgramBuilder pb("defs");
    Label main = pb.newLabel();
    pb.jump(main);
    Label sub = pb.newLabel();
    pb.bind(sub);
    pb.alu(Opcode::Add, 7, 5, 5); // reads x5 defined by the caller
    pb.ret();
    pb.bind(main);
    pb.li(5, 3);
    pb.call(sub);
    pb.halt();
    const isa::Program program = pb.build();
    const Cfg cfg = buildCfg(program);
    const analysis::PossibleDefs defs = analysis::computePossibleDefs(cfg);
    // x5's definition reaches the callee entry.
    const std::size_t callee = cfg.block_of_instr[1];
    EXPECT_NE(defs.in[callee] & (analysis::RegMask{1} << 5), 0u);
    // The VM-defined stack pointer is available everywhere reachable.
    EXPECT_NE(defs.in[cfg.entryBlock()] &
                  (analysis::RegMask{1} << isa::kRegSp),
              0u);
}

TEST(Dataflow, LivenessAcrossLoop)
{
    const isa::Program program = countdownProgram();
    const Cfg cfg = buildCfg(program);
    const analysis::Liveness live = analysis::computeLiveness(cfg);
    // x5 is live entering the loop block (read by addi and bne).
    EXPECT_NE(live.in[1] & (analysis::RegMask{1} << 5), 0u);
    // Nothing is live entering the final halt block.
    EXPECT_EQ(live.in[2], 0u);
}

TEST(Dataflow, ReadWriteMasks)
{
    const isa::Instruction fmadd{Opcode::Fmadd, 3, 1, 2, 0};
    const analysis::RegMask reads = analysis::readMask(fmadd);
    EXPECT_NE(reads & (analysis::RegMask{1} << (32 + 1)), 0u);
    EXPECT_NE(reads & (analysis::RegMask{1} << (32 + 2)), 0u);
    EXPECT_NE(reads & (analysis::RegMask{1} << (32 + 3)), 0u); // accumulator
    EXPECT_EQ(analysis::writeMask(fmadd),
              analysis::RegMask{1} << (32 + 3));

    // Reads of x0 carry no dataflow; writes to x0 are discarded.
    const isa::Instruction addx0{Opcode::Add, 0, 0, 5, 0};
    EXPECT_EQ(analysis::readMask(addx0), analysis::RegMask{1} << 5);
    EXPECT_EQ(analysis::writeMask(addx0), 0u);
}

TEST(StaticFeatures, CountsAndDensities)
{
    const analysis::StaticFeatures f =
        analysis::staticFeatures(countdownProgram());
    EXPECT_EQ(f.num_instructions, 4u);
    EXPECT_EQ(f.num_blocks, 3u);
    EXPECT_EQ(f.num_loops, 1u);
    EXPECT_EQ(f.max_loop_depth, 1u);
    EXPECT_NEAR(f.branch_density, 0.25, 1e-12); // one bne in four instrs
    EXPECT_EQ(f.mem_density, 0.0);
    EXPECT_GE(f.max_int_pressure, 1);
    EXPECT_EQ(f.max_fp_pressure, 0);
    // Vector and names agree in size.
    EXPECT_EQ(f.toVector().size(),
              analysis::StaticFeatures::featureNames().size());
    EXPECT_FALSE(f.toString().empty());
}

TEST(StaticFeatures, MixSumsToOne)
{
    const analysis::StaticFeatures f =
        analysis::staticFeatures(countdownProgram());
    double sum = 0.0;
    for (double g : f.group_mix)
        sum += g;
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

} // namespace
