/**
 * @file
 * Unit tests for k-means clustering and BIC scoring.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "stats/kmeans.hh"
#include "stats/rng.hh"

namespace {

using mica::stats::KMeans;
using mica::stats::KMeansResult;
using mica::stats::Matrix;

/** n points around each of k well-separated 2D centers. */
Matrix
blobs(std::size_t k, std::size_t per_cluster, mica::stats::Rng &rng,
      double spread = 0.05)
{
    Matrix m(k * per_cluster, 2);
    std::size_t row = 0;
    for (std::size_t c = 0; c < k; ++c) {
        const double cx = static_cast<double>(c) * 10.0;
        const double cy = static_cast<double>(c % 2) * 10.0;
        for (std::size_t i = 0; i < per_cluster; ++i, ++row) {
            m(row, 0) = cx + spread * rng.nextGaussian();
            m(row, 1) = cy + spread * rng.nextGaussian();
        }
    }
    return m;
}

TEST(KMeans, EmptyDataThrows)
{
    Matrix m;
    KMeans::Options opts;
    EXPECT_THROW((void)KMeans::run(m, opts), std::invalid_argument);
}

TEST(KMeans, RecoversSeparatedClusters)
{
    mica::stats::Rng rng(1);
    const Matrix m = blobs(4, 30, rng);
    KMeans::Options opts;
    opts.k = 4;
    opts.restarts = 5;
    opts.seed = 7;
    const KMeansResult res = KMeans::run(m, opts);
    // Every ground-truth blob maps to exactly one cluster.
    std::set<std::size_t> used;
    for (std::size_t blob = 0; blob < 4; ++blob) {
        std::set<std::size_t> assigned;
        for (std::size_t i = 0; i < 30; ++i)
            assigned.insert(res.assignment[blob * 30 + i]);
        ASSERT_EQ(assigned.size(), 1u) << "blob " << blob << " split";
        used.insert(*assigned.begin());
    }
    EXPECT_EQ(used.size(), 4u);
    EXPECT_LT(res.inertia, 10.0);
}

TEST(KMeans, KClampedToNumPoints)
{
    Matrix m = Matrix::fromRows({{0, 0}, {1, 1}, {2, 2}});
    KMeans::Options opts;
    opts.k = 10;
    const KMeansResult res = KMeans::run(m, opts);
    EXPECT_EQ(res.centers.rows(), 3u);
}

TEST(KMeans, SizesSumToN)
{
    mica::stats::Rng rng(2);
    const Matrix m = blobs(3, 25, rng);
    KMeans::Options opts;
    opts.k = 5;
    const KMeansResult res = KMeans::run(m, opts);
    std::size_t total = 0;
    for (std::size_t s : res.sizes)
        total += s;
    EXPECT_EQ(total, m.rows());
}

TEST(KMeans, NoEmptyClustersOnSeparableData)
{
    mica::stats::Rng rng(3);
    const Matrix m = blobs(6, 20, rng);
    KMeans::Options opts;
    opts.k = 6;
    opts.restarts = 3;
    const KMeansResult res = KMeans::run(m, opts);
    for (std::size_t s : res.sizes)
        EXPECT_GT(s, 0u);
}

TEST(KMeans, DeterministicForSeed)
{
    mica::stats::Rng rng(4);
    const Matrix m = blobs(3, 40, rng);
    KMeans::Options opts;
    opts.k = 3;
    opts.seed = 99;
    const KMeansResult a = KMeans::run(m, opts);
    const KMeansResult b = KMeans::run(m, opts);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_EQ(a.bic, b.bic);
}

TEST(KMeans, AssignmentMatchesNearestCenter)
{
    mica::stats::Rng rng(5);
    const Matrix m = blobs(3, 30, rng);
    KMeans::Options opts;
    opts.k = 3;
    const KMeansResult res = KMeans::run(m, opts);
    for (std::size_t i = 0; i < m.rows(); ++i) {
        const double assigned = mica::stats::squaredDistance(
            m.row(i), res.centers.row(res.assignment[i]));
        for (std::size_t c = 0; c < res.centers.rows(); ++c)
            EXPECT_LE(assigned,
                      mica::stats::squaredDistance(m.row(i),
                                                   res.centers.row(c)) +
                          1e-9);
    }
}

TEST(KMeans, RepresentativesBelongToTheirCluster)
{
    mica::stats::Rng rng(6);
    const Matrix m = blobs(4, 20, rng);
    KMeans::Options opts;
    opts.k = 4;
    const KMeansResult res = KMeans::run(m, opts);
    const auto reps = res.representatives(m);
    for (std::size_t c = 0; c < reps.size(); ++c) {
        if (res.sizes[c] > 0) {
            EXPECT_EQ(res.assignment[reps[c]], c);
        }
    }
}

TEST(KMeans, BicPrefersTrueK)
{
    mica::stats::Rng rng(7);
    const Matrix m = blobs(4, 50, rng);
    double best_bic = -1e300;
    std::size_t best_k = 0;
    for (std::size_t k : {2u, 3u, 4u, 6u, 8u}) {
        KMeans::Options opts;
        opts.k = k;
        opts.restarts = 4;
        opts.seed = 13;
        const KMeansResult res = KMeans::run(m, opts);
        if (res.bic > best_bic) {
            best_bic = res.bic;
            best_k = k;
        }
    }
    EXPECT_EQ(best_k, 4u);
}

TEST(KMeans, PlusPlusInitAlsoRecovers)
{
    mica::stats::Rng rng(8);
    const Matrix m = blobs(5, 30, rng);
    KMeans::Options opts;
    opts.k = 5;
    opts.init = KMeans::Init::PlusPlus;
    opts.restarts = 2;
    const KMeansResult res = KMeans::run(m, opts);
    EXPECT_LT(res.inertia, 10.0);
}

TEST(KMeans, MeanVariance)
{
    KMeansResult res;
    res.inertia = 50.0;
    EXPECT_DOUBLE_EQ(res.meanVariance(10), 5.0);
    EXPECT_EQ(res.meanVariance(0), 0.0);
}

TEST(KMeans, MoreRestartsNeverWorseBic)
{
    mica::stats::Rng rng(9);
    const Matrix m = blobs(4, 25, rng, 1.0);
    KMeans::Options one;
    one.k = 4;
    one.restarts = 1;
    one.seed = 3;
    KMeans::Options many = one;
    many.restarts = 8;
    // With the same seed stream, the first restart of `many` equals the
    // single restart of `one`; the best of 8 can only be >=.
    EXPECT_GE(KMeans::run(m, many).bic, KMeans::run(m, one).bic - 1e-9);
}

/**
 * Regression for the k-means++ zero-mass fallback: with many coincident
 * points, every seed after the first used to come from
 * `seeds.size() % n`, which could re-select an already-chosen row and
 * yield duplicate initial centers. The fallback must pick the
 * lowest-index row not yet chosen, keeping seeds distinct.
 */
TEST(KMeans, PlusPlusDegenerateFallbackKeepsSeedsDistinct)
{
    Matrix m(6, 2);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        m(r, 0) = 3.25;
        m(r, 1) = -1.5;
    }
    // Every first-seed choice must lead to distinct fallback seeds.
    for (std::uint64_t seed = 0; seed < 12; ++seed) {
        mica::stats::Rng rng(seed);
        const auto seeds = KMeans::plusPlusSeeds(m, 4, rng);
        ASSERT_EQ(seeds.size(), 4u);
        const std::set<std::size_t> distinct(seeds.begin(), seeds.end());
        EXPECT_EQ(distinct.size(), 4u) << "duplicate seed, seed=" << seed;
    }
}

TEST(KMeans, PlusPlusMixedCoincidentFallbackStillDistinct)
{
    // Two distinct locations but k = 4: after both locations are seeded
    // the D² mass is zero and two more seeds come from the fallback.
    Matrix m = Matrix::fromRows(
        {{0, 0}, {0, 0}, {0, 0}, {5, 5}, {5, 5}, {0, 0}});
    mica::stats::Rng rng(3);
    const auto seeds = KMeans::plusPlusSeeds(m, 4, rng);
    ASSERT_EQ(seeds.size(), 4u);
    const std::set<std::size_t> distinct(seeds.begin(), seeds.end());
    EXPECT_EQ(distinct.size(), 4u);
}

TEST(KMeans, PlusPlusSeedingPrunedMatchesNaive)
{
    mica::stats::Rng rng_data(17);
    const Matrix m = blobs(5, 40, rng_data);
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        mica::stats::Rng a(seed);
        mica::stats::Rng b(seed);
        EXPECT_EQ(KMeans::plusPlusSeeds(m, 8, a, 1, false),
                  KMeans::plusPlusSeeds(m, 8, b, 1, true));
    }
}

/**
 * Empty-cluster repair, exercised deterministically via the
 * initial_seeds hook: duplicate seeds put two centers on the same point,
 * so every row picks the lower-index center and the other cluster comes
 * up empty. The repair must steal the row farthest from its center.
 */
TEST(KMeans, RepairStealsFarthestPointIntoEmptyCluster)
{
    // Five points near the origin plus one far outlier.
    Matrix m = Matrix::fromRows({{0.0, 0.0},
                                 {0.1, 0.0},
                                 {0.0, 0.1},
                                 {-0.1, 0.0},
                                 {0.0, -0.1},
                                 {100.0, 0.0}});
    KMeans::Options opts;
    opts.k = 2;
    opts.initial_seeds = {0, 0}; // both centers at row 0 -> cluster 1 empty
    const KMeansResult res = KMeans::run(m, opts);

    // The outlier (row 5) is the farthest point; repair moves it into the
    // empty cluster, where it stays as a singleton.
    EXPECT_EQ(res.assignment[5], 1u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(res.assignment[i], 0u);
    EXPECT_EQ(res.sizes, (std::vector<std::size_t>{5, 1}));

    // The repair's sum transfer must leave each center at the exact mean
    // of its members once converged.
    EXPECT_DOUBLE_EQ(res.centers(1, 0), 100.0);
    EXPECT_DOUBLE_EQ(res.centers(1, 1), 0.0);
    EXPECT_DOUBLE_EQ(res.centers(0, 0), (0.0 + 0.1 + 0.0 - 0.1 + 0.0) / 5.0);
    EXPECT_DOUBLE_EQ(res.centers(0, 1), (0.0 + 0.0 + 0.1 + 0.0 - 0.1) / 5.0);

    // And the repaired run still converges rather than looping.
    EXPECT_LT(res.iterations, opts.max_iterations);
}

TEST(KMeans, RepairFillsEveryEmptyClusterWhenPointsSuffice)
{
    mica::stats::Rng rng(23);
    const Matrix m = blobs(4, 15, rng);
    KMeans::Options opts;
    opts.k = 3;
    opts.initial_seeds = {7, 7, 7}; // three coincident centers
    const KMeansResult res = KMeans::run(m, opts);
    for (std::size_t s : res.sizes)
        EXPECT_GT(s, 0u);
    std::size_t total = 0;
    for (std::size_t s : res.sizes)
        total += s;
    EXPECT_EQ(total, m.rows());
    EXPECT_LT(res.iterations, opts.max_iterations);
}

TEST(KMeans, RepairSkipsSingletonVictims)
{
    // Rows {A, A, B} with seeds {0, 1, 2}: centers 0 and 1 coincide, so
    // cluster 1 starts empty while cluster 2 holds the singleton B. The
    // repair may only steal from cluster 0 (size 2) — B's singleton
    // cluster is protected — ending at sizes {1, 1, 1}.
    Matrix m = Matrix::fromRows({{1.0, 1.0}, {1.0, 1.0}, {9.0, 9.0}});
    KMeans::Options opts;
    opts.k = 3;
    opts.initial_seeds = {0, 1, 2};
    const KMeansResult res = KMeans::run(m, opts);
    EXPECT_EQ(res.sizes, (std::vector<std::size_t>{1, 1, 1}));
    EXPECT_EQ(res.assignment[2], 2u);
    EXPECT_EQ(res.inertia, 0.0);
}

TEST(KMeans, RepairIdenticalWithAndWithoutPruning)
{
    mica::stats::Rng rng(29);
    const Matrix m = blobs(4, 25, rng);
    KMeans::Options opts;
    opts.k = 4;
    opts.initial_seeds = {0, 0, 0, 0}; // forces repeated repairs
    opts.pruning = false;
    const KMeansResult naive = KMeans::run(m, opts);
    opts.pruning = true;
    for (unsigned t : {1u, 4u}) {
        opts.threads = t;
        const KMeansResult pruned = KMeans::run(m, opts);
        EXPECT_EQ(naive.assignment, pruned.assignment);
        EXPECT_EQ(naive.sizes, pruned.sizes);
        EXPECT_EQ(naive.centers.maxAbsDiff(pruned.centers), 0.0);
        EXPECT_EQ(naive.inertia, pruned.inertia);
        EXPECT_EQ(naive.iterations, pruned.iterations);
    }
}

TEST(KMeans, InitialSeedsValidated)
{
    Matrix m = Matrix::fromRows({{0, 0}, {1, 1}, {2, 2}});
    KMeans::Options opts;
    opts.k = 2;
    opts.initial_seeds = {0, 1, 2}; // size != k
    EXPECT_THROW((void)KMeans::run(m, opts), std::invalid_argument);
    opts.initial_seeds = {0, 9}; // out of range
    EXPECT_THROW((void)KMeans::run(m, opts), std::invalid_argument);
}

TEST(KMeans, DistanceCountersAccountForAllAssignmentWork)
{
    mica::stats::Rng rng(31);
    const Matrix m = blobs(6, 50, rng);
    KMeans::Options opts;
    opts.k = 6;
    opts.restarts = 2;
    opts.seed = 5;
    opts.pruning = false;
    const KMeansResult naive = KMeans::run(m, opts);
    opts.pruning = true;
    const KMeansResult pruned = KMeans::run(m, opts);
    // Identical control flow => identical total assignment work; pruning
    // converts a (large) share of it from computed to skipped.
    EXPECT_EQ(naive.distance_counters.computed + naive.distance_counters.pruned,
              pruned.distance_counters.computed +
                  pruned.distance_counters.pruned);
    EXPECT_EQ(naive.distance_counters.pruned, 0u);
    EXPECT_GT(pruned.distance_counters.pruned, 0u);
    EXPECT_LT(pruned.distance_counters.computed,
              naive.distance_counters.computed);
}

/** Larger-k runs remain structurally valid (weights, sizes, reps). */
class KMeansSweepTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(KMeansSweepTest, StructurallyValid)
{
    mica::stats::Rng rng(GetParam() * 31 + 7);
    const Matrix m = blobs(6, 40, rng, 2.0);
    KMeans::Options opts;
    opts.k = GetParam();
    opts.seed = GetParam();
    const KMeansResult res = KMeans::run(m, opts);
    EXPECT_EQ(res.assignment.size(), m.rows());
    std::size_t total = 0;
    for (std::size_t s : res.sizes)
        total += s;
    EXPECT_EQ(total, m.rows());
    EXPECT_GE(res.inertia, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Ks, KMeansSweepTest,
                         ::testing::Values(1, 2, 5, 10, 40, 100, 240));

/**
 * The tie-break contract the ANN path must reproduce (docs/ANN.md):
 * among centers at exactly equal distance, the lowest index wins —
 * locked here with exact duplicates at large k, on both the fresh scan
 * and the cached-substitution entry point.
 */
TEST(KMeans, NearestCenterTieBreaksToLowestIndexWithDuplicates)
{
    mica::stats::Rng rng(101);
    const std::size_t pairs = 1024, dim = 5;
    Matrix centers(2 * pairs, dim);
    for (std::size_t p = 0; p < pairs; ++p)
        for (std::size_t j = 0; j < dim; ++j) {
            const double v = 5.0 * rng.nextGaussian();
            // Identical bytes => exactly equal distances, at any point.
            centers(2 * p, j) = v;
            centers(2 * p + 1, j) = v;
        }

    std::vector<double> point(dim);
    for (int q = 0; q < 128; ++q) {
        for (std::size_t j = 0; j < dim; ++j)
            point[j] = 5.0 * rng.nextGaussian();
        const auto res = mica::stats::nearestCenter(point, centers);
        EXPECT_EQ(res.index % 2, 0u)
            << "tie resolved away from the lowest index";
        // The runner-up is the identical twin: exactly equal distance.
        EXPECT_EQ(res.second_dist2, res.dist2);
        // Cached-substitution entry (the pruned Lloyd path) must agree.
        const auto cached = mica::stats::nearestCenter(
            point, centers, res.index, res.dist2);
        EXPECT_EQ(cached.index, res.index);
        EXPECT_EQ(cached.dist2, res.dist2);
    }
}

TEST(KMeans, NearestCenterNearDuplicatePrefersStrictlyCloser)
{
    // Near-duplicates a hair apart: the strictly closer center must win
    // regardless of index order — ties are only for *exactly* equal
    // distances. The nudge is 1e-9, small against the coordinates but
    // far above the dist2 ulp at this magnitude, so the difference
    // survives the squared-sum (a one-ulp coordinate nudge would round
    // away in the summation and become an exact tie).
    constexpr double kNudge = 1.0 - 1e-9;
    const std::size_t dim = 3;
    Matrix centers(2, dim);
    for (std::size_t j = 0; j < dim; ++j) {
        centers(0, j) = 1.0;
        centers(1, j) = 1.0;
    }
    // Center 1 (higher index) is nudged toward the query.
    centers(1, 0) = kNudge;
    std::vector<double> at_zero(dim, 0.0);
    const auto res = mica::stats::nearestCenter(at_zero, centers);
    EXPECT_EQ(res.index, 1u);
    EXPECT_LT(res.dist2, res.second_dist2);

    // Mirror: nudge the lower index instead; it wins on distance too.
    Matrix mirrored(2, dim);
    for (std::size_t j = 0; j < dim; ++j) {
        mirrored(0, j) = 1.0;
        mirrored(1, j) = 1.0;
    }
    mirrored(0, 0) = kNudge;
    const auto res2 = mica::stats::nearestCenter(at_zero, mirrored);
    EXPECT_EQ(res2.index, 0u);
}

} // namespace
