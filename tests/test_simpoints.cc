/**
 * @file
 * Tests for simulation-point selection (the section-5.3 application).
 */

#include <gtest/gtest.h>

#include "core/simpoints.hh"
#include "stats/rng.hh"

namespace {

using namespace mica;
using core::CharacterizationResult;

/**
 * Synthetic characterization: benchmark 0 has two sharply different
 * behaviours (60%/40% of its intervals), benchmark 1 is homogeneous,
 * benchmark 2 has a single interval.
 */
CharacterizationResult
makeChars()
{
    CharacterizationResult chars;
    for (int b = 0; b < 3; ++b) {
        chars.benchmark_ids.push_back("S/b" + std::to_string(b));
        chars.benchmark_names.push_back("b" + std::to_string(b));
        chars.benchmark_suites.push_back("S");
    }
    stats::Rng rng(3);
    auto add = [&](std::uint32_t bench, double level, int count) {
        for (int i = 0; i < count; ++i) {
            core::IntervalRecord rec;
            rec.benchmark = bench;
            rec.values[0] = level + 0.001 * rng.nextGaussian();
            rec.values[1] = 2.0 * level + 0.001 * rng.nextGaussian();
            rec.values[2] = 0.5; // constant characteristic
            chars.intervals.push_back(rec);
        }
    };
    add(0, 1.0, 30);
    add(0, 9.0, 20);
    add(1, 4.0, 25);
    add(2, 7.0, 1);
    return chars;
}

TEST(SimPoints, WeightsSumToOne)
{
    const auto chars = makeChars();
    const auto sel = core::selectSimPoints(chars, 0, 4, 1);
    double total = 0.0;
    for (const auto &p : sel.points)
        total += p.weight;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SimPoints, TwoBehavioursNeedTwoPoints)
{
    const auto chars = makeChars();
    const auto sel = core::selectSimPoints(chars, 0, 2, 1);
    ASSERT_EQ(sel.points.size(), 2u);
    // The weights must reflect the 60/40 split.
    double w0 = sel.points[0].weight;
    double w1 = sel.points[1].weight;
    if (w0 < w1)
        std::swap(w0, w1);
    EXPECT_NEAR(w0, 0.6, 0.02);
    EXPECT_NEAR(w1, 0.4, 0.02);
}

TEST(SimPoints, PointsBelongToTheBenchmark)
{
    const auto chars = makeChars();
    for (std::uint32_t b = 0; b < 3; ++b) {
        const auto sel = core::selectSimPoints(chars, b, 3, 1);
        for (const auto &p : sel.points)
            EXPECT_EQ(chars.intervals[p.interval].benchmark, b);
    }
}

TEST(SimPoints, EstimationErrorSmallWithEnoughPoints)
{
    const auto chars = makeChars();
    const auto sel = core::selectSimPoints(chars, 0, 2, 1);
    EXPECT_LT(sel.estimation_error, 0.02)
        << "two points should reconstruct a two-mode benchmark";
}

TEST(SimPoints, OnePointForTwoModesIsWorse)
{
    const auto chars = makeChars();
    const auto one = core::selectSimPoints(chars, 0, 1, 1);
    const auto two = core::selectSimPoints(chars, 0, 2, 1);
    EXPECT_EQ(one.points.size(), 1u);
    EXPECT_GT(one.estimation_error, two.estimation_error);
}

TEST(SimPoints, HomogeneousBenchmarkNeedsOnePointWorth)
{
    const auto chars = makeChars();
    const auto sel = core::selectSimPoints(chars, 1, 1, 1);
    EXPECT_EQ(sel.points.size(), 1u);
    EXPECT_LT(sel.estimation_error, 0.01);
}

TEST(SimPoints, SingleIntervalBenchmark)
{
    const auto chars = makeChars();
    const auto sel = core::selectSimPoints(chars, 2, 8, 1);
    ASSERT_EQ(sel.points.size(), 1u);
    EXPECT_DOUBLE_EQ(sel.points[0].weight, 1.0);
    EXPECT_EQ(sel.estimation_error, 0.0);
    EXPECT_DOUBLE_EQ(sel.simulated_fraction, 1.0);
}

TEST(SimPoints, SimulatedFraction)
{
    const auto chars = makeChars();
    const auto sel = core::selectSimPoints(chars, 0, 2, 1);
    EXPECT_NEAR(sel.simulated_fraction, 2.0 / 50.0, 1e-9);
}

TEST(SimPoints, BadArgumentsThrow)
{
    const auto chars = makeChars();
    EXPECT_THROW((void)core::selectSimPoints(chars, 0, 0, 1),
                 std::invalid_argument);
    EXPECT_THROW((void)core::selectSimPoints(chars, 9, 2, 1),
                 std::invalid_argument);
}

TEST(SimPoints, CrossBenchmarkSummary)
{
    // Hand-built analysis: suite S over 3 benchmarks, 4 clusters total.
    const auto chars = makeChars();
    core::SampledDataset sampled;
    core::PhaseAnalysis analysis;
    // 6 rows: benchmarks 0,0,1,1,2,2 in clusters 0,1,1,2,3,3.
    const std::uint32_t bench_of[] = {0, 0, 1, 1, 2, 2};
    const std::size_t cluster_of[] = {0, 1, 1, 2, 3, 3};
    for (int i = 0; i < 6; ++i) {
        std::vector<double> row(metrics::kNumCharacteristics, 0.0);
        sampled.data.appendRow(row);
        sampled.benchmark_of_row.push_back(bench_of[i]);
        sampled.source_interval.push_back(0);
        analysis.clustering.assignment.push_back(cluster_of[i]);
    }
    analysis.clustering.centers = stats::Matrix(4, 1);
    analysis.clustering.sizes = {1, 2, 1, 2};

    const auto summaries =
        core::crossBenchmarkSimPoints(chars, sampled, analysis, 8);
    ASSERT_EQ(summaries.size(), 1u);
    EXPECT_EQ(summaries[0].suite, "S");
    EXPECT_EQ(summaries[0].shared_points, 4u);
    EXPECT_EQ(summaries[0].isolated_points, 24u);
    EXPECT_GT(summaries[0].shared_points_90, 0u);
    EXPECT_LE(summaries[0].shared_points_90, 4u);
}

} // namespace
