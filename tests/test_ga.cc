/**
 * @file
 * Tests for the genetic-algorithm feature selector.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ga/feature_select.hh"
#include "stats/rng.hh"

namespace {

using mica::ga::FeatureSelector;
using mica::ga::GaOptions;
using mica::stats::Matrix;

/**
 * Synthetic data set: the first `informative` columns are independent
 * signals, the rest are noisy copies of column 0 (redundant).
 */
Matrix
syntheticPhases(std::size_t rows, std::size_t informative,
                std::size_t total, mica::stats::Rng &rng)
{
    Matrix m(rows, total);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < informative; ++c)
            m(r, c) = rng.nextGaussian();
        for (std::size_t c = informative; c < total; ++c)
            m(r, c) = m(r, 0) + 0.01 * rng.nextGaussian();
    }
    return m;
}

TEST(FeatureSelector, TooFewRowsThrows)
{
    Matrix m(2, 5);
    EXPECT_THROW(FeatureSelector sel(m), std::invalid_argument);
}

TEST(FeatureSelector, FullSubsetHasPerfectFitness)
{
    mica::stats::Rng rng(1);
    const Matrix m = syntheticPhases(40, 4, 10, rng);
    FeatureSelector sel(m);
    std::vector<std::size_t> all(10);
    for (std::size_t i = 0; i < 10; ++i)
        all[i] = i;
    EXPECT_NEAR(sel.fitnessOf(all), 1.0, 1e-9);
}

TEST(FeatureSelector, EmptySubsetIsZero)
{
    mica::stats::Rng rng(2);
    const Matrix m = syntheticPhases(30, 3, 6, rng);
    FeatureSelector sel(m);
    EXPECT_EQ(sel.fitnessOf({}), 0.0);
}

TEST(FeatureSelector, InformativeSubsetBeatsRedundantSubset)
{
    mica::stats::Rng rng(3);
    const Matrix m = syntheticPhases(60, 4, 12, rng);
    FeatureSelector sel(m);
    const std::size_t informative[] = {0, 1, 2, 3};
    const std::size_t redundant[] = {0, 4, 5, 6}; // copies of column 0
    EXPECT_GT(sel.fitnessOf(informative),
              sel.fitnessOf(redundant) + 0.1);
}

TEST(FeatureSelector, GaFindsInformativeColumns)
{
    mica::stats::Rng rng(4);
    const Matrix m = syntheticPhases(60, 4, 16, rng);
    FeatureSelector sel(m);
    GaOptions opts;
    opts.target_count = 4;
    opts.seed = 11;
    const auto result = sel.select(opts);
    ASSERT_EQ(result.selected.size(), 4u);
    // Columns >= 4 are near-copies of column 0, so the distinct signal
    // classes are {col0-like, 1, 2, 3}; a good subset covers most of them
    // without wasting genes on duplicate col0 copies.
    std::set<std::size_t> classes;
    for (std::size_t g : result.selected)
        classes.insert(g >= 4 ? 0 : g);
    EXPECT_GE(classes.size(), 3u)
        << "GA wasted genes on redundant columns";
    EXPECT_GT(result.fitness, 0.9);
}

TEST(FeatureSelector, ExactCardinalityAndNoDuplicates)
{
    mica::stats::Rng rng(5);
    const Matrix m = syntheticPhases(40, 5, 20, rng);
    FeatureSelector sel(m);
    for (std::size_t k : {1u, 3u, 7u, 20u}) {
        GaOptions opts;
        opts.target_count = k;
        opts.max_generations = 8;
        const auto result = sel.select(opts);
        ASSERT_EQ(result.selected.size(), k);
        auto sorted = result.selected;
        std::sort(sorted.begin(), sorted.end());
        EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                    sorted.end());
        for (std::size_t g : sorted)
            EXPECT_LT(g, 20u);
    }
}

TEST(FeatureSelector, BadCardinalityThrows)
{
    mica::stats::Rng rng(6);
    const Matrix m = syntheticPhases(30, 3, 8, rng);
    FeatureSelector sel(m);
    GaOptions opts;
    opts.target_count = 0;
    EXPECT_THROW((void)sel.select(opts), std::invalid_argument);
    opts.target_count = 9;
    EXPECT_THROW((void)sel.select(opts), std::invalid_argument);
}

TEST(FeatureSelector, DeterministicForSeed)
{
    mica::stats::Rng rng(7);
    const Matrix m = syntheticPhases(40, 4, 12, rng);
    FeatureSelector sel(m);
    GaOptions opts;
    opts.target_count = 5;
    opts.seed = 77;
    const auto a = sel.select(opts);
    const auto b = sel.select(opts);
    EXPECT_EQ(a.selected, b.selected);
    EXPECT_EQ(a.fitness, b.fitness);
}

TEST(FeatureSelector, SweepIsBroadlyIncreasing)
{
    mica::stats::Rng rng(8);
    const Matrix m = syntheticPhases(50, 6, 14, rng);
    FeatureSelector sel(m);
    GaOptions opts;
    opts.max_generations = 16;
    opts.patience = 6;
    const auto sweep = sel.sweepSubsetSizes(8, opts);
    ASSERT_EQ(sweep.size(), 8u);
    // Fitness with many features must beat fitness with one feature.
    EXPECT_GT(sweep.back().fitness, sweep.front().fitness);
    for (std::size_t i = 0; i < sweep.size(); ++i)
        EXPECT_EQ(sweep[i].selected.size(), i + 1);
}

TEST(FeatureSelector, FitnessCacheHitsWithoutChangingSelection)
{
    mica::stats::Rng rng(10);
    const Matrix m = syntheticPhases(40, 4, 12, rng);
    FeatureSelector sel(m);
    GaOptions opts;
    opts.target_count = 4;
    opts.seed = 5;
    opts.max_generations = 16;

    const auto first = sel.select(opts);
    const auto after_first = sel.cacheStats();
    // Converging populations rebreed already-seen genomes, so a single
    // run must already hit the cache.
    EXPECT_GT(after_first.hits, 0u);
    EXPECT_GT(after_first.entries, 0u);
    // Duplicate genomes bred into the same batch each count as a miss
    // but share one cache entry, so entries can trail misses.
    EXPECT_LE(after_first.entries, after_first.misses);

    // A re-run replays the same Rng-driven breeding, so every evaluation
    // is a cache hit — and the selection is unchanged.
    const auto second = sel.select(opts);
    const auto after_second = sel.cacheStats();
    EXPECT_EQ(first.selected, second.selected);
    EXPECT_EQ(first.fitness, second.fitness);
    EXPECT_EQ(first.generations, second.generations);
    EXPECT_EQ(after_second.misses, after_first.misses);
    EXPECT_GT(after_second.hits, after_first.hits);
}

TEST(FeatureSelector, CachedFitnessMatchesDirectEvaluation)
{
    mica::stats::Rng rng(11);
    const Matrix m = syntheticPhases(40, 4, 10, rng);
    FeatureSelector sel(m);
    GaOptions opts;
    opts.target_count = 3;
    opts.seed = 13;
    opts.max_generations = 8;
    const auto result = sel.select(opts);
    // The winning genome's (possibly cached) fitness must be bitwise
    // equal to a fresh uncached evaluation: fitness is a pure function.
    EXPECT_EQ(result.fitness, sel.fitnessOf(result.selected));
}

TEST(FeatureSelector, CacheIsSelectorLocal)
{
    mica::stats::Rng rng(12);
    const Matrix m = syntheticPhases(40, 4, 10, rng);
    FeatureSelector a(m);
    FeatureSelector b(m);
    GaOptions opts;
    opts.target_count = 4;
    opts.seed = 21;
    opts.max_generations = 6;
    // A fresh selector with an identical matrix starts cold but lands on
    // the identical result: the cache is an optimization, not state that
    // leaks across instances.
    const auto ra = a.select(opts);
    const auto rb = b.select(opts);
    EXPECT_EQ(ra.selected, rb.selected);
    EXPECT_EQ(ra.fitness, rb.fitness);
    EXPECT_EQ(b.cacheStats().misses, a.cacheStats().misses);
}

TEST(FeatureSelector, FitnessWithinPearsonBounds)
{
    mica::stats::Rng rng(9);
    const Matrix m = syntheticPhases(30, 4, 10, rng);
    FeatureSelector sel(m);
    for (std::size_t c = 0; c < 10; ++c) {
        const std::size_t one[] = {c};
        const double f = sel.fitnessOf(one);
        EXPECT_GE(f, -1.0 - 1e-12);
        EXPECT_LE(f, 1.0 + 1e-12);
    }
}

} // namespace
