/**
 * @file
 * Unit tests for the SRISC interpreter: per-opcode semantics, control
 * flow, trap behaviour and trace-sink records.
 */

#include <gtest/gtest.h>

#include <limits>

#include "asm/assembler.hh"
#include "vm/cpu.hh"

namespace {

using namespace mica;
using vm::Cpu;
using vm::StopReason;

/** Assemble, run to halt (or budget), return the CPU for inspection. */
struct RunFixture
{
    isa::Program program;
    std::unique_ptr<Cpu> cpu;
    vm::RunResult result;

    explicit RunFixture(const std::string &source,
                        std::uint64_t budget = 100000)
        : program(assembler::assemble(source))
    {
        cpu = std::make_unique<Cpu>(program);
        result = cpu->run(budget);
    }
};

/** Parameterized check: one ALU snippet and the expected x10 value. */
struct AluCase
{
    const char *name;
    const char *source;
    std::int64_t expected;
};

class AluSemanticsTest : public ::testing::TestWithParam<AluCase>
{
};

TEST_P(AluSemanticsTest, ComputesExpectedValue)
{
    RunFixture fix(GetParam().source);
    EXPECT_EQ(fix.result.reason, StopReason::Halted);
    EXPECT_EQ(fix.cpu->intReg(10), GetParam().expected);
}

const AluCase kAluCases[] = {
    {"add", "addi x5, x0, 7\n addi x6, x0, 35\n add x10, x5, x6\n halt",
     42},
    {"sub", "addi x5, x0, 7\n addi x6, x0, 35\n sub x10, x6, x5\n halt",
     28},
    {"mul", "addi x5, x0, -6\n addi x6, x0, 7\n mul x10, x5, x6\n halt",
     -42},
    {"div", "addi x5, x0, 45\n addi x6, x0, 7\n div x10, x5, x6\n halt",
     6},
    {"div_negative",
     "addi x5, x0, -45\n addi x6, x0, 7\n div x10, x5, x6\n halt", -6},
    {"div_by_zero", "addi x5, x0, 45\n div x10, x5, x0\n halt", -1},
    {"rem", "addi x5, x0, 45\n addi x6, x0, 7\n rem x10, x5, x6\n halt",
     3},
    {"rem_by_zero", "addi x5, x0, 45\n rem x10, x5, x0\n halt", 45},
    {"and", "addi x5, x0, 12\n addi x6, x0, 10\n and x10, x5, x6\n halt",
     8},
    {"or", "addi x5, x0, 12\n addi x6, x0, 10\n or x10, x5, x6\n halt",
     14},
    {"xor", "addi x5, x0, 12\n addi x6, x0, 10\n xor x10, x5, x6\n halt",
     6},
    {"sll", "addi x5, x0, 3\n addi x6, x0, 4\n sll x10, x5, x6\n halt",
     48},
    {"srl_positive",
     "addi x5, x0, 48\n addi x6, x0, 4\n srl x10, x5, x6\n halt", 3},
    {"sra_negative",
     "addi x5, x0, -48\n addi x6, x0, 4\n sra x10, x5, x6\n halt", -3},
    {"slt_true", "addi x5, x0, -1\n addi x6, x0, 1\n slt x10, x5, x6\n halt",
     1},
    {"sltu_wraps",
     "addi x5, x0, -1\n addi x6, x0, 1\n sltu x10, x5, x6\n halt", 0},
    {"addi_negative", "addi x10, x0, -100\n halt", -100},
    {"andi", "addi x5, x0, 13\n andi x10, x5, 6\n halt", 4},
    {"ori", "addi x5, x0, 8\n ori x10, x5, 3\n halt", 11},
    {"xori", "addi x5, x0, 15\n xori x10, x5, 9\n halt", 6},
    {"slli", "addi x5, x0, 5\n slli x10, x5, 3\n halt", 40},
    {"srli", "addi x5, x0, 40\n srli x10, x5, 3\n halt", 5},
    {"srai", "addi x5, x0, -40\n srai x10, x5, 3\n halt", -5},
    {"slti", "addi x5, x0, 3\n slti x10, x5, 4\n halt", 1},
};

INSTANTIATE_TEST_SUITE_P(Cases, AluSemanticsTest,
                         ::testing::ValuesIn(kAluCases),
                         [](const auto &info) {
                             return std::string(info.param.name);
                         });

TEST(Cpu, X0AlwaysZero)
{
    RunFixture fix("addi x0, x0, 55\n add x10, x0, x0\n halt");
    EXPECT_EQ(fix.cpu->intReg(0), 0);
    EXPECT_EQ(fix.cpu->intReg(10), 0);
}

TEST(Cpu, LoadStoreRoundTrip)
{
    RunFixture fix(R"(
        .data
        buf: .zero 64
        .text
        addi x5, x0, -123456
        sd x5, buf(x0)
        ld x10, buf(x0)
        halt
    )");
    EXPECT_EQ(fix.cpu->intReg(10), -123456);
}

TEST(Cpu, ByteLoadSignExtends)
{
    RunFixture fix(R"(
        .data
        buf: .byte 0xff
        .text
        lb x10, buf(x0)
        halt
    )");
    EXPECT_EQ(fix.cpu->intReg(10), -1);
}

TEST(Cpu, HalfWordLoad)
{
    RunFixture fix(R"(
        .data
        buf: .zero 8
        .text
        addi x5, x0, 0x8001
        sh x5, buf(x0)
        lh x10, buf(x0)
        halt
    )");
    EXPECT_EQ(fix.cpu->intReg(10),
              static_cast<std::int64_t>(static_cast<std::int16_t>(0x8001)));
}

TEST(Cpu, WordLoadSignExtends)
{
    RunFixture fix(R"(
        .data
        buf: .word32 0x80000000
        .text
        lw x10, buf(x0)
        halt
    )");
    EXPECT_EQ(fix.cpu->intReg(10), static_cast<std::int64_t>(
                                       static_cast<std::int32_t>(0x80000000)));
}

TEST(Cpu, FpArithmetic)
{
    RunFixture fix(R"(
        .data
        a: .double 1.5
        b: .double 2.5
        out: .zero 8
        .text
        fld f1, a(x0)
        fld f2, b(x0)
        fadd f3, f1, f2
        fmul f4, f1, f2
        fsub f5, f2, f1
        fdiv f6, f2, f1
        fsd f3, out(x0)
        halt
    )");
    EXPECT_DOUBLE_EQ(fix.cpu->fpReg(3), 4.0);
    EXPECT_DOUBLE_EQ(fix.cpu->fpReg(4), 3.75);
    EXPECT_DOUBLE_EQ(fix.cpu->fpReg(5), 1.0);
    EXPECT_DOUBLE_EQ(fix.cpu->fpReg(6), 2.5 / 1.5);
    EXPECT_DOUBLE_EQ(fix.cpu->memory().readDouble(
                         fix.program.data_base + 16),
                     4.0);
}

TEST(Cpu, FpMaddAccumulates)
{
    RunFixture fix(R"(
        .data
        a: .double 2.0
        b: .double 3.0
        .text
        fld f1, a(x0)
        fld f2, b(x0)
        cvtif f3, x0
        fmadd f3, f1, f2
        fmadd f3, f1, f2
        halt
    )");
    EXPECT_DOUBLE_EQ(fix.cpu->fpReg(3), 12.0);
}

TEST(Cpu, FpUnaryOps)
{
    RunFixture fix(R"(
        .data
        a: .double -9.0
        .text
        fld f1, a(x0)
        fabs f2, f1
        fsqrt f3, f2
        fneg f4, f3
        fmov f5, f4
        halt
    )");
    EXPECT_DOUBLE_EQ(fix.cpu->fpReg(2), 9.0);
    EXPECT_DOUBLE_EQ(fix.cpu->fpReg(3), 3.0);
    EXPECT_DOUBLE_EQ(fix.cpu->fpReg(4), -3.0);
    EXPECT_DOUBLE_EQ(fix.cpu->fpReg(5), -3.0);
}

TEST(Cpu, FpCompares)
{
    RunFixture fix(R"(
        .data
        a: .double 1.0
        b: .double 2.0
        .text
        fld f1, a(x0)
        fld f2, b(x0)
        fcmplt x10, f1, f2
        fcmple x11, f2, f2
        fcmpeq x12, f1, f2
        halt
    )");
    EXPECT_EQ(fix.cpu->intReg(10), 1);
    EXPECT_EQ(fix.cpu->intReg(11), 1);
    EXPECT_EQ(fix.cpu->intReg(12), 0);
}

TEST(Cpu, Conversions)
{
    RunFixture fix(R"(
        .data
        a: .double -7.9
        .text
        addi x5, x0, 42
        cvtif f1, x5
        fld f2, a(x0)
        cvtfi x10, f2
        halt
    )");
    EXPECT_DOUBLE_EQ(fix.cpu->fpReg(1), 42.0);
    EXPECT_EQ(fix.cpu->intReg(10), -7) << "conversion truncates toward 0";
}

TEST(Cpu, BranchTakenAndNotTaken)
{
    RunFixture fix(R"(
        addi x5, x0, 1
        beq x5, x0, bad     ; not taken
        addi x10, x0, 1
        bne x5, x0, good    ; taken
    bad:
        addi x10, x0, 99
        halt
    good:
        addi x11, x0, 2
        halt
    )");
    EXPECT_EQ(fix.cpu->intReg(10), 1);
    EXPECT_EQ(fix.cpu->intReg(11), 2);
}

TEST(Cpu, UnsignedBranches)
{
    RunFixture fix(R"(
        addi x5, x0, -1     ; unsigned max
        addi x6, x0, 1
        bltu x6, x5, l1
        addi x10, x0, 99
        halt
    l1:
        bgeu x5, x6, l2
        addi x10, x0, 98
        halt
    l2:
        addi x10, x0, 1
        halt
    )");
    EXPECT_EQ(fix.cpu->intReg(10), 1);
}

TEST(Cpu, LoopExecutes)
{
    RunFixture fix(R"(
        addi x5, x0, 10
        addi x10, x0, 0
    loop:
        add x10, x10, x5
        addi x5, x5, -1
        bne x5, x0, loop
        halt
    )");
    EXPECT_EQ(fix.cpu->intReg(10), 55);
}

TEST(Cpu, CallAndReturn)
{
    RunFixture fix(R"(
        jal ra, func
        addi x10, x0, 5
        halt
    func:
        addi x11, x0, 7
        jalr x0, ra, 0
    )");
    EXPECT_EQ(fix.result.reason, StopReason::Halted);
    EXPECT_EQ(fix.cpu->intReg(10), 5);
    EXPECT_EQ(fix.cpu->intReg(11), 7);
}

TEST(Cpu, JalWritesLinkRegister)
{
    RunFixture fix(R"(
        jal x5, target
    target:
        halt
    )");
    EXPECT_EQ(static_cast<std::uint64_t>(fix.cpu->intReg(5)),
              fix.program.code_base + isa::kInstrBytes);
}

TEST(Cpu, InvalidPcTraps)
{
    RunFixture fix(R"(
        addi x5, x0, 64
        jalr x0, x5, 0      ; jump outside the code segment
    )");
    EXPECT_EQ(fix.result.reason, StopReason::InvalidPc);
    EXPECT_EQ(fix.result.executed, 2u);
}

TEST(Cpu, InstructionLimitStops)
{
    isa::Program prog = assembler::assemble(R"(
    loop:
        addi x5, x5, 1
        jal x0, loop
    )");
    Cpu cpu(prog);
    const auto res = cpu.run(1001);
    EXPECT_EQ(res.reason, StopReason::InstructionLimit);
    EXPECT_EQ(res.executed, 1001u);
    EXPECT_EQ(cpu.instructionsRetired(), 1001u);
}

TEST(Cpu, RunAfterHaltIsNoop)
{
    isa::Program prog = assembler::assemble("halt");
    Cpu cpu(prog);
    EXPECT_EQ(cpu.run(10).reason, StopReason::Halted);
    const auto again = cpu.run(10);
    EXPECT_EQ(again.reason, StopReason::Halted);
    EXPECT_EQ(again.executed, 0u);
}

TEST(Cpu, ResetRestoresInitialState)
{
    isa::Program prog = assembler::assemble(R"(
        .data
        buf: .zero 8
        .text
        addi x5, x0, 9
        sd x5, buf(x0)
        halt
    )");
    Cpu cpu(prog);
    (void)cpu.run(100);
    EXPECT_EQ(cpu.intReg(5), 9);
    cpu.reset();
    EXPECT_EQ(cpu.intReg(5), 0);
    EXPECT_EQ(cpu.pc(), prog.entry());
    EXPECT_EQ(cpu.instructionsRetired(), 0u);
    EXPECT_EQ(cpu.memory().read(prog.data_base, 8), 0u);
    // And it runs again identically.
    EXPECT_EQ(cpu.run(100).reason, StopReason::Halted);
    EXPECT_EQ(cpu.intReg(5), 9);
}

TEST(Cpu, StackPointerInitialized)
{
    isa::Program prog = assembler::assemble("halt");
    Cpu cpu(prog);
    EXPECT_EQ(static_cast<std::uint64_t>(cpu.intReg(isa::kRegSp)),
              prog.stack_top);
}

/** Collects every dynamic record for trace assertions. */
struct RecordingSink : vm::TraceSink
{
    std::vector<vm::DynInstr> records;

    void
    onInstruction(const vm::DynInstr &dyn) override
    {
        records.push_back(dyn);
    }
};

TEST(CpuTrace, RecordsMemoryAccesses)
{
    isa::Program prog = assembler::assemble(R"(
        .data
        buf: .zero 16
        .text
        addi x5, x0, 3
        sd x5, buf(x0)
        ld x6, buf(x0)
        halt
    )");
    Cpu cpu(prog);
    RecordingSink sink;
    (void)cpu.run(100, &sink);
    ASSERT_EQ(sink.records.size(), 4u);
    EXPECT_EQ(sink.records[1].is_store, true);
    EXPECT_EQ(sink.records[1].mem_addr, prog.data_base);
    EXPECT_EQ(sink.records[1].mem_bytes, 8);
    EXPECT_EQ(sink.records[2].is_load, true);
    EXPECT_EQ(sink.records[2].mem_addr, prog.data_base);
}

TEST(CpuTrace, RecordsBranchOutcomes)
{
    isa::Program prog = assembler::assemble(R"(
        addi x5, x0, 1
        beq x5, x0, skip    ; not taken
        bne x5, x0, skip    ; taken
        addi x6, x0, 9
    skip:
        halt
    )");
    Cpu cpu(prog);
    RecordingSink sink;
    (void)cpu.run(100, &sink);
    ASSERT_GE(sink.records.size(), 3u);
    EXPECT_TRUE(sink.records[1].is_cond_branch);
    EXPECT_FALSE(sink.records[1].taken);
    EXPECT_EQ(sink.records[1].next_pc,
              sink.records[1].pc + isa::kInstrBytes);
    EXPECT_TRUE(sink.records[2].is_cond_branch);
    EXPECT_TRUE(sink.records[2].taken);
    EXPECT_NE(sink.records[2].next_pc,
              sink.records[2].pc + isa::kInstrBytes);
}

TEST(CpuTrace, PcSequenceIsConsistent)
{
    isa::Program prog = assembler::assemble(R"(
        addi x5, x0, 3
    loop:
        addi x5, x5, -1
        bne x5, x0, loop
        halt
    )");
    Cpu cpu(prog);
    RecordingSink sink;
    (void)cpu.run(100, &sink);
    for (std::size_t i = 0; i + 1 < sink.records.size(); ++i)
        EXPECT_EQ(sink.records[i].next_pc, sink.records[i + 1].pc);
}

} // namespace
