/**
 * @file
 * Property/fuzz tests across the ISA toolchain: randomly generated valid
 * instructions must survive encode -> decode and disassemble ->
 * re-assemble unchanged, and random linear programs must execute
 * identically on independent VM instances.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "asm/assembler.hh"
#include "stats/rng.hh"
#include "vm/cpu.hh"

namespace {

using namespace mica;
using isa::Format;
using isa::Instruction;
using isa::Opcode;

constexpr std::size_t kNumOpcodes =
    static_cast<std::size_t>(Opcode::NumOpcodes);

/** Random instruction with fields valid for its format. */
Instruction
randomInstruction(stats::Rng &rng)
{
    Instruction in;
    in.op = static_cast<Opcode>(rng.nextBelow(kNumOpcodes));
    in.rd = static_cast<std::uint8_t>(rng.nextBelow(isa::kNumIntRegs));
    in.rs1 = static_cast<std::uint8_t>(rng.nextBelow(isa::kNumIntRegs));
    in.rs2 = static_cast<std::uint8_t>(rng.nextBelow(isa::kNumIntRegs));
    // Immediates within the encodable range, both signs.
    const std::int64_t magnitude =
        static_cast<std::int64_t>(rng.nextBelow(1ULL << 33));
    in.imm = rng.nextBool(0.5) ? magnitude : -magnitude;
    // Branch/jal displacements must stay 8-byte aligned for the
    // assembler round trip to hold (the VM would trap otherwise).
    const Format fmt = in.info().format;
    if (fmt == Format::Branch || fmt == Format::Jal)
        in.imm &= ~7LL;

    // Zero the fields a format does not use: they are not part of the
    // textual form, so the disassemble -> assemble round trip (rightly)
    // cannot preserve them.
    switch (fmt) {
      case Format::None:
        in.rd = in.rs1 = in.rs2 = 0;
        in.imm = 0;
        break;
      case Format::RRI:
      case Format::Load:
      case Format::FLoad:
      case Format::CvtIF:
      case Format::CvtFI:
      case Format::Jalr:
        in.rs2 = 0;
        break;
      case Format::Store:
      case Format::FStore:
      case Format::Branch:
        in.rd = 0;
        break;
      case Format::Jal:
        in.rs1 = in.rs2 = 0;
        break;
      case Format::FRR:
        in.rs2 = 0;
        break;
      default:
        break; // RRR / FRRR / FMA / FCmp print every register field
    }
    switch (fmt) {
      case Format::RRR:
      case Format::FRRR:
      case Format::FRR:
      case Format::FMA:
      case Format::FCmp:
      case Format::CvtIF:
      case Format::CvtFI:
      case Format::None:
        in.imm = 0; // no immediate in the textual form
        break;
      default:
        break;
    }
    return in;
}

class RoundTripFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RoundTripFuzz, EncodeDecode)
{
    stats::Rng rng(GetParam());
    for (int i = 0; i < 2000; ++i) {
        const Instruction in = randomInstruction(rng);
        const Instruction out = isa::decode(isa::encode(in));
        ASSERT_EQ(out, in) << in.disassemble();
    }
}

TEST_P(RoundTripFuzz, DisassembleReassemble)
{
    stats::Rng rng(GetParam() ^ 0xD15A);
    std::ostringstream source;
    std::vector<Instruction> originals;
    for (int i = 0; i < 500; ++i) {
        const Instruction in = randomInstruction(rng);
        originals.push_back(in);
        source << in.disassemble() << "\n";
    }
    const isa::Program prog = assembler::assemble(source.str());
    ASSERT_EQ(prog.code.size(), originals.size());
    for (std::size_t i = 0; i < originals.size(); ++i)
        ASSERT_EQ(prog.code[i], originals[i])
            << "instruction " << i << ": "
            << originals[i].disassemble();
}

TEST_P(RoundTripFuzz, VmExecutionIsDeterministic)
{
    // A random but runnable program: straight-line ALU/memory code with a
    // final halt; loads/stores are based off a valid data pointer.
    stats::Rng rng(GetParam() ^ 0xBEEF);
    std::ostringstream source;
    source << ".data\nbuf: .zero 4096\n.text\n";
    source << "addi x1, x0, buf\n";
    const char *ops[] = {
        "add x%d, x%d, x%d",   "sub x%d, x%d, x%d",
        "mul x%d, x%d, x%d",   "xor x%d, x%d, x%d",
        "and x%d, x%d, x%d",   "or x%d, x%d, x%d",
        "sll x%d, x%d, x%d",   "slt x%d, x%d, x%d",
    };
    char line[64];
    for (int i = 0; i < 400; ++i) {
        const int kind = static_cast<int>(rng.nextBelow(10));
        const int rd = 2 + static_cast<int>(rng.nextBelow(29));
        const int rs1 = 2 + static_cast<int>(rng.nextBelow(30));
        const int rs2 = 2 + static_cast<int>(rng.nextBelow(30));
        if (kind < 8) {
            std::snprintf(line, sizeof line, ops[kind], rd, rs1, rs2);
        } else if (kind == 8) {
            std::snprintf(line, sizeof line, "ld x%d, %d(x1)", rd,
                          static_cast<int>(rng.nextBelow(512)) * 8);
        } else {
            std::snprintf(line, sizeof line, "sd x%d, %d(x1)", rs1,
                          static_cast<int>(rng.nextBelow(512)) * 8);
        }
        source << line << "\n";
    }
    source << "halt\n";

    const isa::Program prog = assembler::assemble(source.str());
    vm::Cpu a(prog), b(prog);
    const auto ra = a.run(100000);
    const auto rb = b.run(100000);
    ASSERT_EQ(ra.reason, vm::StopReason::Halted);
    ASSERT_EQ(ra.executed, rb.executed);
    for (std::uint8_t r = 0; r < isa::kNumIntRegs; ++r)
        ASSERT_EQ(a.intReg(r), b.intReg(r)) << "x" << int(r);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

} // namespace
