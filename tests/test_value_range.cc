/**
 * @file
 * Interval value-range analysis: the exact-VM-semantics cross-check of
 * isa::evalIntAlu and intervalAlu, constant folding, widening, branch
 * refinement and call-return havoc.
 */

#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/cfg.hh"
#include "analysis/value_range.hh"
#include "isa/semantics.hh"
#include "vm/cpu.hh"
#include "workloads/program_builder.hh"

namespace {

using namespace mica;
using analysis::buildCfg;
using analysis::Cfg;
using analysis::Interval;
using analysis::ValueRanges;
using isa::Opcode;
using workloads::Label;
using workloads::ProgramBuilder;

constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

/** Run `op x7, x5, x6` on the real VM and read back the result. */
std::int64_t
vmAlu(Opcode op, std::int64_t a, std::int64_t b)
{
    ProgramBuilder pb("alu");
    pb.alu(op, 7, 5, 6);
    pb.halt();
    vm::Cpu cpu(pb.build());
    cpu.setIntReg(5, a);
    cpu.setIntReg(6, b);
    (void)cpu.run(1);
    return cpu.intReg(7);
}

const std::vector<std::int64_t> &
trickyValues()
{
    static const std::vector<std::int64_t> values = {
        0, 1, -1, 2, -2, 7, 63, 64, 65, -64, 100, -100, kMin, kMax,
        kMin + 1, kMax - 1};
    return values;
}

const std::vector<Opcode> &
rrrOps()
{
    static const std::vector<Opcode> ops = {
        Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::Div, Opcode::Rem,
        Opcode::And, Opcode::Or,  Opcode::Xor, Opcode::Sll, Opcode::Srl,
        Opcode::Sra, Opcode::Slt, Opcode::Sltu};
    return ops;
}

TEST(Semantics, EvalIntAluMatchesTheVm)
{
    // The analyses fold constants with evalIntAlu; a single divergence
    // from the interpreter would make "proven" facts wrong. Exercise the
    // documented edge cases: division by zero, INT64_MIN / -1, shift
    // amounts at and beyond 64, and full wraparound.
    for (Opcode op : rrrOps())
        for (std::int64_t a : trickyValues())
            for (std::int64_t b : trickyValues())
                EXPECT_EQ(isa::evalIntAlu(op, a, b), vmAlu(op, a, b))
                    << isa::mnemonic(op) << " " << a << ", " << b;
}

TEST(ValueRange, SingletonIntervalsFoldExactly)
{
    for (Opcode op : rrrOps())
        for (std::int64_t a : trickyValues())
            for (std::int64_t b : trickyValues()) {
                const Interval r = analysis::intervalAlu(
                    op, Interval::constant(a), Interval::constant(b));
                EXPECT_TRUE(r.isConstant());
                EXPECT_EQ(r.lo, isa::evalIntAlu(op, a, b))
                    << isa::mnemonic(op) << " " << a << ", " << b;
            }
}

TEST(ValueRange, WideIntervalsContainEveryConcreteResult)
{
    // Soundness: whatever the concrete operands inside [lo, hi], the
    // abstract result must contain the concrete result.
    const Interval box{-3, 3};
    for (Opcode op : rrrOps()) {
        const Interval r = analysis::intervalAlu(op, box, box);
        for (std::int64_t a = box.lo; a <= box.hi; ++a)
            for (std::int64_t b = box.lo; b <= box.hi; ++b)
                EXPECT_TRUE(r.contains(isa::evalIntAlu(op, a, b)))
                    << isa::mnemonic(op) << " " << a << ", " << b;
    }
    // Empty operands propagate emptiness, never fabricate values.
    EXPECT_TRUE(analysis::intervalAlu(Opcode::Add, Interval::empty(), box)
                    .isEmpty());
}

TEST(ValueRange, ConstantsPropagateThroughStraightLineCode)
{
    ProgramBuilder pb("const");
    pb.li(5, 10);
    pb.alui(Opcode::Addi, 6, 5, 5);
    pb.alu(Opcode::Mul, 7, 6, 6);
    pb.halt();
    const isa::Program program = pb.build();
    const Cfg cfg = buildCfg(program);
    const ValueRanges ranges = analysis::computeValueRanges(cfg);
    ASSERT_TRUE(ranges.converged);
    EXPECT_EQ(ranges.atUse(cfg, 3, 7), Interval::constant(225));
    // The stack pointer holds its reset value; x0 is pinned at zero.
    EXPECT_EQ(ranges.atUse(cfg, 0, isa::kRegSp),
              Interval::constant(
                  static_cast<std::int64_t>(program.stack_top)));
    EXPECT_EQ(ranges.atUse(cfg, 0, isa::kRegZero), Interval::constant(0));
}

TEST(ValueRange, BranchRefinementClampsBothEdges)
{
    ProgramBuilder pb("refine");
    const std::uint64_t buf = pb.allocData(64);
    pb.li(6, static_cast<std::int64_t>(buf));
    pb.load(Opcode::Ld, 5, 6, 0); // x5: unknown
    pb.li(7, 10);
    Label big = pb.newLabel();
    pb.branch(Opcode::Bge, 5, 7, big);
    pb.alui(Opcode::Addi, 8, 5, 0); // fallthrough: x5 < 10
    pb.halt();
    pb.bind(big);
    pb.alui(Opcode::Addi, 9, 5, 0); // taken: x5 >= 10
    pb.halt();
    const isa::Program program = pb.build();
    const Cfg cfg = buildCfg(program);
    const ValueRanges ranges = analysis::computeValueRanges(cfg);
    ASSERT_TRUE(ranges.converged);

    const Interval below = ranges.atUse(cfg, 4, 5);
    EXPECT_LE(below.hi, 9);
    const Interval above = ranges.atUse(cfg, 6, 5);
    EXPECT_GE(above.lo, 10);
}

TEST(ValueRange, WideningTerminatesAndExitRefinesTheCounter)
{
    // A counting loop would ascend the interval lattice forever without
    // widening; the engine must still converge, and the loop-exit edge
    // must pin the counter at the bound.
    ProgramBuilder pb("widen");
    pb.li(5, 0);
    pb.li(6, 10);
    Label top = pb.newLabel();
    pb.bind(top);
    pb.alui(Opcode::Addi, 5, 5, 1);
    pb.branch(Opcode::Blt, 5, 6, top);
    pb.alui(Opcode::Addi, 7, 5, 0); // x5 == 10 here
    pb.halt();
    const isa::Program program = pb.build();
    const Cfg cfg = buildCfg(program);
    const ValueRanges ranges = analysis::computeValueRanges(cfg);
    ASSERT_TRUE(ranges.converged);

    const Interval after = ranges.atUse(cfg, 4, 5);
    EXPECT_FALSE(after.isEmpty());
    EXPECT_GE(after.lo, 10); // fallthrough edge: !(x5 < 10)
    EXPECT_TRUE(after.contains(10));
    // Inside the loop the branch keeps the counter below the bound.
    const Interval in_loop = ranges.atUse(cfg, 2, 5);
    EXPECT_LE(in_loop.lo, 0);
    EXPECT_LE(in_loop.hi, 9);
}

TEST(ValueRange, ReturnSiteHavocsOnlyCalleeWrites)
{
    ProgramBuilder pb("havoc");
    Label main = pb.newLabel();
    Label sub = pb.newLabel();
    pb.jump(main);
    pb.bind(sub);
    pb.li(5, 1); // the callee clobbers x5 ...
    pb.ret();
    pb.bind(main);
    pb.li(5, 7);
    pb.li(6, 3); // ... but never touches x6
    pb.call(sub);
    pb.alu(Opcode::Add, 8, 5, 6);
    pb.halt();
    const isa::Program program = pb.build();
    const Cfg cfg = buildCfg(program);
    const ValueRanges ranges = analysis::computeValueRanges(cfg);
    ASSERT_TRUE(ranges.converged);

    const std::size_t use = 6; // the add after the call
    ASSERT_EQ(program.code[use].op, Opcode::Add);
    // Smuggling the pre-call [7, 7] past the callee would be unsound; the
    // havoc must at least admit the callee's value.
    const Interval x5 = ranges.atUse(cfg, use, 5);
    EXPECT_NE(x5, Interval::constant(7));
    EXPECT_TRUE(x5.contains(1));
    EXPECT_TRUE(x5.contains(7));
    // Registers the callee provably leaves alone keep their value.
    EXPECT_EQ(ranges.atUse(cfg, use, 6), Interval::constant(3));
}

TEST(ValueRange, LoadsBoundBySignExtensionWidth)
{
    ProgramBuilder pb("loads");
    const std::uint64_t buf = pb.allocData(64);
    pb.li(6, static_cast<std::int64_t>(buf));
    pb.load(Opcode::Lb, 5, 6, 0);
    pb.alui(Opcode::Addi, 7, 5, 0);
    pb.halt();
    const isa::Program program = pb.build();
    const Cfg cfg = buildCfg(program);
    const ValueRanges ranges = analysis::computeValueRanges(cfg);
    const Interval byte = ranges.atUse(cfg, 2, 5);
    EXPECT_EQ(byte.lo, -128);
    EXPECT_EQ(byte.hi, 127);
}

TEST(ValueRange, AtUseIsFullInUnreachableBlocks)
{
    ProgramBuilder pb("dead");
    Label end = pb.newLabel();
    pb.jump(end);
    pb.alui(Opcode::Addi, 5, 5, 1); // unreachable
    pb.bind(end);
    pb.halt();
    const isa::Program program = pb.build();
    const Cfg cfg = buildCfg(program);
    const ValueRanges ranges = analysis::computeValueRanges(cfg);
    EXPECT_EQ(ranges.atUse(cfg, 1, 5), Interval::full());
}

} // namespace
