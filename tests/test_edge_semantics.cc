/**
 * @file
 * Edge-case semantics: integer overflow corners, fp special values,
 * conversion clamping, and the profiler metrics those paths feed.
 */

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "asm/assembler.hh"
#include "mica/profiler.hh"
#include "vm/cpu.hh"

namespace {

using namespace mica;
namespace m = metrics::midx;

std::unique_ptr<vm::Cpu>
runToHalt(const std::string &source)
{
    auto cpu = std::make_unique<vm::Cpu>(assembler::assemble(source));
    const auto res = cpu->run(100000);
    EXPECT_EQ(res.reason, vm::StopReason::Halted);
    return cpu;
}

TEST(EdgeSemantics, DivOverflowWrapsLikeRiscV)
{
    // INT64_MIN / -1 overflows; RISC-V defines the result as the dividend.
    auto cpu = runToHalt(R"(
        .data
        min: .word64 0x8000000000000000
        .text
        ld x5, min(x0)
        addi x6, x0, -1
        div x10, x5, x6
        rem x11, x5, x6
        halt
    )");
    EXPECT_EQ(cpu->intReg(10), std::numeric_limits<std::int64_t>::min());
    EXPECT_EQ(cpu->intReg(11), 0);
}

TEST(EdgeSemantics, MulWrapsModulo64)
{
    auto cpu = runToHalt(R"(
        .data
        big: .word64 0x8000000000000001
        .text
        ld x5, big(x0)
        addi x6, x0, 2
        mul x10, x5, x6
        halt
    )");
    EXPECT_EQ(cpu->intReg(10), 2); // (2^63+1)*2 mod 2^64 = 2
}

TEST(EdgeSemantics, ShiftAmountsAreMasked)
{
    auto cpu = runToHalt(R"(
        addi x5, x0, 1
        addi x6, x0, 65      ; 65 & 63 == 1
        sll x10, x5, x6
        halt
    )");
    EXPECT_EQ(cpu->intReg(10), 2);
}

TEST(EdgeSemantics, SraiPreservesSignAcrossFullShift)
{
    auto cpu = runToHalt(R"(
        addi x5, x0, -1
        srai x10, x5, 63
        srli x11, x5, 63
        halt
    )");
    EXPECT_EQ(cpu->intReg(10), -1);
    EXPECT_EQ(cpu->intReg(11), 1);
}

TEST(EdgeSemantics, FsqrtOfNegativeClampsToZero)
{
    auto cpu = runToHalt(R"(
        .data
        neg: .double -4.0
        .text
        fld f1, neg(x0)
        fsqrt f2, f1
        halt
    )");
    EXPECT_DOUBLE_EQ(cpu->fpReg(2), 0.0)
        << "domain is clamped, no NaN escapes";
}

TEST(EdgeSemantics, CvtfiClampsAtInt64Bounds)
{
    auto cpu = runToHalt(R"(
        .data
        huge:  .double 1e300
        nhuge: .double -1e300
        .text
        fld f1, huge(x0)
        cvtfi x10, f1
        fld f2, nhuge(x0)
        cvtfi x11, f2
        halt
    )");
    EXPECT_EQ(cpu->intReg(10), std::numeric_limits<std::int64_t>::max());
    EXPECT_EQ(cpu->intReg(11), std::numeric_limits<std::int64_t>::min());
}

TEST(EdgeSemantics, CvtfiOfNanIsZero)
{
    auto cpu = runToHalt(R"(
        .data
        zero: .double 0.0
        .text
        fld f1, zero(x0)
        fdiv f2, f1, f1     ; 0/0 = NaN
        cvtfi x10, f2
        halt
    )");
    EXPECT_EQ(cpu->intReg(10), 0);
}

TEST(EdgeSemantics, FpDivisionByZeroIsInf)
{
    auto cpu = runToHalt(R"(
        .data
        one:  .double 1.0
        zero: .double 0.0
        .text
        fld f1, one(x0)
        fld f2, zero(x0)
        fdiv f3, f1, f2
        fcmplt x10, f1, f3  ; 1.0 < inf
        halt
    )");
    EXPECT_EQ(cpu->intReg(10), 1);
}

TEST(EdgeSemantics, JalrWithOffset)
{
    auto cpu = runToHalt(R"(
        addi x5, x0, 0x10000 ; code base
        jalr x1, x5, 24      ; jump to the 4th instruction
        halt                 ; skipped
        addi x10, x0, 9
        halt
    )");
    EXPECT_EQ(cpu->intReg(10), 9);
    EXPECT_EQ(static_cast<std::uint64_t>(cpu->intReg(1)),
              0x10000u + 2 * isa::kInstrBytes);
}

TEST(EdgeSemantics, ProfilerCountsFmaddThreeOperands)
{
    vm::Cpu cpu(assembler::assemble(R"(
    loop:
        fmadd f1, f2, f3
        jal x0, loop
    )"));
    profiler::MicaProfiler prof(1000);
    (void)cpu.run(1000, &prof);
    // fmadd reads fd, fs1, fs2 = 3 operands; jal reads none.
    EXPECT_NEAR(prof.intervals().at(0)[m::RegInputOperands], 1.5, 0.01);
}

TEST(EdgeSemantics, ProfilerTracksGlobalStoreStrides)
{
    vm::Cpu cpu(assembler::assemble(R"(
        .data
        buf: .zero 65536
        .text
        addi x5, x0, buf
    loop:
        sd x6, 0(x5)
        sd x6, 8(x5)
        addi x5, x5, 16
        andi x5, x5, 0xffff
        addi x5, x5, buf
        jal x0, loop
    )"));
    profiler::MicaProfiler prof(6000);
    (void)cpu.run(6000, &prof);
    const auto &v = prof.intervals().at(0);
    EXPECT_GT(v[m::GlobalStoreStride64], 0.95)
        << "consecutive stores are 8 or 8-after-16 bytes apart";
    EXPECT_EQ(v[m::GlobalLoadStride64], 0.0) << "no loads at all";
}

TEST(EdgeSemantics, InstructionPageFootprintGrowsWithCode)
{
    // >512 instructions span multiple 4K instruction pages.
    std::string body;
    for (int i = 0; i < 1200; ++i)
        body += "addi x5, x5, 1\n";
    vm::Cpu cpu(assembler::assemble("loop:\n" + body + "jal x0, loop"));
    profiler::MicaProfiler prof(3000);
    (void)cpu.run(3000, &prof);
    EXPECT_GE(prof.intervals().at(0)[m::InstrFootprint4K], 2.0);
}

TEST(EdgeSemantics, GasOutperformsGagOnAliasedBranches)
{
    // Two branches with identical (random-ish) global history but
    // opposite fixed outcomes: a per-address table separates them, a
    // purely global table sees conflicting updates.
    vm::Cpu cpu(assembler::assemble(R"(
        .data
        mult: .word64 6364136223846793005
        .text
        ld x9, mult(x0)
        addi x6, x0, 7
    loop:
        mul x6, x6, x9
        addi x6, x6, 12345
        srli x7, x6, 60
        andi x7, x7, 1
        beq x7, x0, a_nt      ; random branch (shifts history)
        addi x8, x8, 1
    a_nt:
        beq x0, x0, b_t       ; always taken
        nop
    b_t:
        bne x0, x0, c_nt      ; never taken
    c_nt:
        jal x0, loop
    )"));
    profiler::MicaProfiler prof(30000);
    (void)cpu.run(30000, &prof);
    const auto &v = prof.intervals().at(0);
    EXPECT_LT(v[m::PpmGas12], v[m::PpmGag12] + 1e-9);
    EXPECT_LT(v[m::PpmPas12], 0.2);
}

} // namespace
