/**
 * @file
 * Tests for agglomerative hierarchical clustering.
 */

#include <gtest/gtest.h>

#include <set>

#include "stats/linkage.hh"
#include "stats/rng.hh"

namespace {

using mica::stats::agglomerate;
using mica::stats::Dendrogram;
using mica::stats::Linkage;
using mica::stats::Matrix;

Matrix
threeBlobs(mica::stats::Rng &rng, int per_blob = 5)
{
    Matrix m(0, 0);
    const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
    for (int blob = 0; blob < 3; ++blob)
        for (int i = 0; i < per_blob; ++i) {
            const double row[2] = {
                centers[blob][0] + 0.1 * rng.nextGaussian(),
                centers[blob][1] + 0.1 * rng.nextGaussian()};
            m.appendRow(row);
        }
    return m;
}

TEST(Linkage, ProducesNMinusOneMerges)
{
    mica::stats::Rng rng(1);
    const Matrix m = threeBlobs(rng);
    const Dendrogram tree = agglomerate(m);
    EXPECT_EQ(tree.num_points, 15u);
    EXPECT_EQ(tree.merges.size(), 14u);
}

TEST(Linkage, SinglePointTree)
{
    Matrix m = Matrix::fromRows({{1.0, 2.0}});
    const Dendrogram tree = agglomerate(m);
    EXPECT_EQ(tree.num_points, 1u);
    EXPECT_TRUE(tree.merges.empty());
}

TEST(Linkage, FirstMergeIsClosestPair)
{
    Matrix m = Matrix::fromRows({{0, 0}, {5, 0}, {5.1, 0}, {20, 0}});
    const Dendrogram tree = agglomerate(m);
    const auto &first = tree.merges[0];
    const std::set<std::size_t> pair{first.left, first.right};
    EXPECT_TRUE(pair.count(1));
    EXPECT_TRUE(pair.count(2));
    EXPECT_NEAR(first.distance, 0.1, 1e-9);
}

TEST(Linkage, CutRecoversBlobs)
{
    mica::stats::Rng rng(2);
    const Matrix m = threeBlobs(rng);
    for (Linkage linkage :
         {Linkage::Single, Linkage::Complete, Linkage::Average}) {
        const Dendrogram tree = agglomerate(m, linkage);
        const auto labels = tree.cut(3);
        // Each blob maps to exactly one flat cluster.
        std::set<std::size_t> used;
        for (int blob = 0; blob < 3; ++blob) {
            std::set<std::size_t> blob_labels;
            for (int i = 0; i < 5; ++i)
                blob_labels.insert(labels[blob * 5 + i]);
            ASSERT_EQ(blob_labels.size(), 1u)
                << "linkage " << static_cast<int>(linkage);
            used.insert(*blob_labels.begin());
        }
        EXPECT_EQ(used.size(), 3u);
    }
}

TEST(Linkage, CutAtOneIsSingleCluster)
{
    mica::stats::Rng rng(3);
    const Matrix m = threeBlobs(rng);
    const auto labels = agglomerate(m).cut(1);
    for (std::size_t l : labels)
        EXPECT_EQ(l, 0u);
}

TEST(Linkage, CutAtNIsAllSingletons)
{
    mica::stats::Rng rng(4);
    const Matrix m = threeBlobs(rng);
    const auto labels = agglomerate(m).cut(15);
    std::set<std::size_t> distinct(labels.begin(), labels.end());
    EXPECT_EQ(distinct.size(), 15u);
}

TEST(Linkage, CutBadKThrows)
{
    mica::stats::Rng rng(5);
    const Dendrogram tree = agglomerate(threeBlobs(rng));
    EXPECT_THROW((void)tree.cut(0), std::invalid_argument);
    EXPECT_THROW((void)tree.cut(16), std::invalid_argument);
}

TEST(Linkage, MergeDistancesNondecreasingForAverage)
{
    mica::stats::Rng rng(6);
    Matrix m(12, 3);
    for (std::size_t r = 0; r < 12; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            m(r, c) = rng.nextGaussian();
    const Dendrogram tree = agglomerate(m, Linkage::Average);
    // Average linkage is monotone on Euclidean data (no inversions in
    // practice for random points; single/complete are monotone too).
    for (std::size_t i = 0; i + 1 < tree.merges.size(); ++i)
        EXPECT_LE(tree.merges[i].distance,
                  tree.merges[i + 1].distance + 1e-9);
}

TEST(Linkage, HeightForK)
{
    Matrix m = Matrix::fromRows({{0, 0}, {1, 0}, {10, 0}});
    const Dendrogram tree = agglomerate(m);
    // 3 -> 2 clusters happens at distance 1; 2 -> 1 at ~9.5 (average).
    EXPECT_NEAR(tree.heightForK(2), 1.0, 1e-9);
    EXPECT_GT(tree.heightForK(1), 8.0);
    EXPECT_EQ(tree.heightForK(3), 0.0);
}

TEST(Linkage, SingleVsCompleteDifferOnChains)
{
    // A chain of points: single linkage glues the chain end-to-end early;
    // complete linkage keeps the two chain halves apart longer.
    Matrix m(8, 1);
    for (std::size_t i = 0; i < 8; ++i)
        m(i, 0) = static_cast<double>(i);
    const Dendrogram single = agglomerate(m, Linkage::Single);
    const Dendrogram complete = agglomerate(m, Linkage::Complete);
    EXPECT_NEAR(single.merges.back().distance, 1.0, 1e-9)
        << "single linkage joins the chain at unit steps";
    EXPECT_GT(complete.merges.back().distance, 3.0);
}

TEST(Linkage, RenderDendrogramContainsLabelsAndDistances)
{
    Matrix m = Matrix::fromRows({{0, 0}, {1, 0}, {10, 0}});
    const Dendrogram tree = agglomerate(m);
    const std::string text = mica::stats::renderDendrogram(
        tree, {"alpha", "beta", "gamma"});
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("beta"), std::string::npos);
    EXPECT_NE(text.find("gamma"), std::string::npos);
    EXPECT_NE(text.find("[d="), std::string::npos);
}

TEST(Linkage, RenderHandlesEmptyTree)
{
    Matrix m = Matrix::fromRows({{1.0}});
    const std::string text =
        mica::stats::renderDendrogram(agglomerate(m), {"only"});
    EXPECT_NE(text.find("only"), std::string::npos);
}

TEST(Linkage, DeterministicAcrossRuns)
{
    mica::stats::Rng rng(7);
    const Matrix m = threeBlobs(rng);
    const Dendrogram a = agglomerate(m);
    const Dendrogram b = agglomerate(m);
    ASSERT_EQ(a.merges.size(), b.merges.size());
    for (std::size_t i = 0; i < a.merges.size(); ++i) {
        EXPECT_EQ(a.merges[i].left, b.merges[i].left);
        EXPECT_EQ(a.merges[i].right, b.merges[i].right);
    }
}

} // namespace
