/**
 * @file
 * Unit tests for the two-pass text assembler.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"

namespace {

using namespace mica;
using assembler::AsmError;
using assembler::assemble;
using isa::Opcode;

TEST(Assembler, EmptyProgram)
{
    const auto prog = assemble("");
    EXPECT_TRUE(prog.code.empty());
    EXPECT_TRUE(prog.data.empty());
}

TEST(Assembler, CommentsAndBlankLines)
{
    const auto prog = assemble(R"(
        ; full line comment
        # another comment style
        nop      ; trailing comment
        halt     # trailing comment
    )");
    ASSERT_EQ(prog.code.size(), 2u);
    EXPECT_EQ(prog.code[0].op, Opcode::Nop);
    EXPECT_EQ(prog.code[1].op, Opcode::Halt);
}

TEST(Assembler, AllOperandFormats)
{
    const auto prog = assemble(R"(
        add x1, x2, x3
        addi x1, x2, -5
        ld x1, 16(x2)
        sd x3, 8(x2)
        fld f1, 0(x2)
        fsd f2, 24(x2)
        fadd f1, f2, f3
        fsqrt f1, f2
        fmadd f1, f2, f3
        fcmplt x1, f2, f3
        cvtif f1, x2
        cvtfi x1, f2
        beq x1, x2, 16
        jal x1, -8
        jalr x0, ra, 0
        nop
        halt
    )");
    EXPECT_EQ(prog.code.size(), 17u);
    EXPECT_EQ(prog.code[1].imm, -5);
    EXPECT_EQ(prog.code[2].imm, 16);
    EXPECT_EQ(prog.code[3].rs2, 3);
    EXPECT_EQ(prog.code[12].imm, 16);
    EXPECT_EQ(prog.code[13].imm, -8);
}

TEST(Assembler, RegisterAliases)
{
    const auto prog = assemble("add x1, zero, sp\n jalr x0, ra, 0");
    EXPECT_EQ(prog.code[0].rs1, isa::kRegZero);
    EXPECT_EQ(prog.code[0].rs2, isa::kRegSp);
    EXPECT_EQ(prog.code[1].rs1, isa::kRegRa);
}

TEST(Assembler, BackwardBranchLabel)
{
    const auto prog = assemble(R"(
    top:
        addi x5, x5, -1
        bne x5, x0, top
    )");
    EXPECT_EQ(prog.code[1].imm, -static_cast<std::int64_t>(
                                    isa::kInstrBytes));
}

TEST(Assembler, ForwardBranchLabel)
{
    const auto prog = assemble(R"(
        beq x0, x0, done
        nop
        nop
    done:
        halt
    )");
    EXPECT_EQ(prog.code[0].imm, 3 * static_cast<std::int64_t>(
                                    isa::kInstrBytes));
}

TEST(Assembler, MultipleLabelsOneLine)
{
    const auto prog = assemble(R"(
    a: b: nop
        jal x0, a
        jal x0, b
    )");
    EXPECT_EQ(prog.code[1].imm, -8);
    EXPECT_EQ(prog.code[2].imm, -16);
}

TEST(Assembler, DataDirectives)
{
    const auto prog = assemble(R"(
        .data
        w64: .word64 1, 2, 3
        w32: .word32 7
        b:   .byte 1, 2
        z:   .zero 6
        d:   .double 1.5
        .text
        halt
    )");
    // 24 + 4 + 2 + 6 + 8 — directives pack without padding.
    EXPECT_EQ(prog.data.size(), 44u);
    EXPECT_EQ(prog.data[0], 1u);
    EXPECT_EQ(prog.data[8], 2u);
    EXPECT_EQ(prog.data[24], 7u);
    EXPECT_EQ(prog.data[28], 1u);
    EXPECT_EQ(prog.data[29], 2u);
}

TEST(Assembler, DataLabelAsImmediate)
{
    const auto prog = assemble(R"(
        .data
        pad: .zero 16
        var: .word64 99
        .text
        ld x5, var(x0)
        halt
    )");
    EXPECT_EQ(prog.code[0].imm,
              static_cast<std::int64_t>(prog.data_base + 16));
}

TEST(Assembler, DataLabelInsideWord64)
{
    const auto prog = assemble(R"(
        .data
        a: .word64 5
        p: .word64 a
        .text
        halt
    )");
    std::uint64_t stored = 0;
    for (int i = 0; i < 8; ++i)
        stored |= static_cast<std::uint64_t>(prog.data[8 + i]) << (8 * i);
    EXPECT_EQ(stored, prog.data_base);
}

TEST(Assembler, HexNumbers)
{
    const auto prog = assemble("addi x5, x0, 0xff\n halt");
    EXPECT_EQ(prog.code[0].imm, 255);
}

TEST(Assembler, FullRangeUnsignedWord64)
{
    // Values above INT64_MAX are stored as their two's-complement bits.
    const auto prog = assemble(R"(
        .data
        v: .word64 0xffffffffffffffff
        w: .word64 0x8000000000000000
        .text
        halt
    )");
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(prog.data[static_cast<std::size_t>(i)], 0xffu);
    EXPECT_EQ(prog.data[15], 0x80u);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    try {
        (void)assemble("nop\nbogus x1\n");
        FAIL() << "expected AsmError";
    } catch (const AsmError &e) {
        EXPECT_EQ(e.line(), 2);
    }
}

TEST(Assembler, UnknownMnemonicThrows)
{
    EXPECT_THROW((void)assemble("frobnicate x1, x2"), AsmError);
}

TEST(Assembler, UnknownLabelThrows)
{
    EXPECT_THROW((void)assemble("jal x0, nowhere"), AsmError);
}

TEST(Assembler, DuplicateLabelThrows)
{
    EXPECT_THROW((void)assemble("a: nop\na: nop"), AsmError);
}

TEST(Assembler, WrongOperandCountThrows)
{
    EXPECT_THROW((void)assemble("add x1, x2"), AsmError);
    EXPECT_THROW((void)assemble("nop x1"), AsmError);
}

TEST(Assembler, BadRegisterThrows)
{
    EXPECT_THROW((void)assemble("add x1, x2, x32"), AsmError);
    EXPECT_THROW((void)assemble("add x1, x2, f3"), AsmError);
    EXPECT_THROW((void)assemble("fadd f1, x2, f3"), AsmError);
}

TEST(Assembler, BranchToDataLabelThrows)
{
    EXPECT_THROW((void)assemble(R"(
        .data
        v: .word64 1
        .text
        jal x0, v
    )"),
                 AsmError);
}

TEST(Assembler, InstructionInDataSectionThrows)
{
    EXPECT_THROW((void)assemble(".data\nnop"), AsmError);
}

TEST(Assembler, ImmediateOutOfRangeThrows)
{
    EXPECT_THROW((void)assemble("addi x1, x0, 99999999999"), AsmError);
}

TEST(Assembler, DisassembleProgramListsAll)
{
    const auto prog = assemble("nop\nadd x1, x2, x3\nhalt");
    const std::string text = assembler::disassembleProgram(prog);
    EXPECT_NE(text.find("nop"), std::string::npos);
    EXPECT_NE(text.find("add x1, x2, x3"), std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);
}

TEST(Assembler, CaseInsensitiveMnemonics)
{
    const auto prog = assemble("ADD x1, X2, x3\nHALT");
    EXPECT_EQ(prog.code[0].op, Opcode::Add);
}

} // namespace
