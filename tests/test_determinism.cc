/**
 * @file
 * Thread-count-invariance suite: every parallel stage of the stats engine
 * (k-means restarts + blocked Lloyd assignment, GA fitness evaluation,
 * PCA covariance accumulation) and the full pipeline must produce
 * bit-for-bit identical results for threads = 1, 2 and 4 with the same
 * seed. Also covers the k-means++ degenerate-data path that the restart
 * fan-out must survive, and the distance-pruning contract: Hamerly-bound
 * pruned runs (standalone k-means and the full pipeline) must be bitwise
 * identical to the naive-scan oracle for every thread count.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "ga/feature_select.hh"
#include "stats/eigen.hh"
#include "stats/kmeans.hh"
#include "stats/pca.hh"
#include "stats/rng.hh"

namespace {

using namespace mica;
using stats::KMeans;
using stats::KMeansResult;
using stats::Matrix;

Matrix
gaussianMatrix(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    stats::Rng rng(seed);
    Matrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = rng.nextGaussian();
    return m;
}

void
expectIdentical(const KMeansResult &a, const KMeansResult &b)
{
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_EQ(a.sizes, b.sizes);
    EXPECT_EQ(a.centers.maxAbsDiff(b.centers), 0.0);
    EXPECT_EQ(a.inertia, b.inertia);
    EXPECT_EQ(a.bic, b.bic);
    EXPECT_EQ(a.iterations, b.iterations);
}

TEST(Determinism, KMeansRestartsThreadCountInvariant)
{
    const Matrix m = gaussianMatrix(500, 8, 11);
    KMeans::Options opts;
    opts.k = 16;
    opts.restarts = 4;
    opts.seed = 99;
    opts.threads = 1;
    const KMeansResult serial = KMeans::run(m, opts);
    for (unsigned t : {2u, 4u}) {
        opts.threads = t;
        expectIdentical(serial, KMeans::run(m, opts));
    }
}

TEST(Determinism, KMeansBlockedAssignmentInvariantForLargeN)
{
    // More rows than one assignment block (1024), so the row-partitioned
    // Lloyd step genuinely reduces across several blocks.
    const Matrix m = gaussianMatrix(3000, 6, 12);
    KMeans::Options opts;
    opts.k = 24;
    opts.restarts = 2;
    opts.seed = 5;
    opts.init = KMeans::Init::PlusPlus;
    opts.threads = 1;
    const KMeansResult serial = KMeans::run(m, opts);
    for (unsigned t : {2u, 4u}) {
        opts.threads = t;
        expectIdentical(serial, KMeans::run(m, opts));
    }
}

TEST(Determinism, KMeansPlusPlusDegenerateAllIdenticalRows)
{
    // Every row coincides, so after the first seed all D(x)^2 mass is zero
    // and plusPlusSeeds takes its `total <= 0` fallback path.
    Matrix m(64, 3);
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            m(r, c) = 1.5;
    KMeans::Options opts;
    opts.k = 5;
    opts.restarts = 3;
    opts.init = KMeans::Init::PlusPlus;
    opts.seed = 7;
    opts.threads = 1;
    const KMeansResult serial = KMeans::run(m, opts);
    EXPECT_EQ(serial.assignment.size(), 64u);
    EXPECT_EQ(serial.inertia, 0.0);
    std::size_t total = 0;
    for (std::size_t s : serial.sizes)
        total += s;
    EXPECT_EQ(total, 64u);
    for (unsigned t : {2u, 4u}) {
        opts.threads = t;
        expectIdentical(serial, KMeans::run(m, opts));
    }
}

TEST(Determinism, KMeansPrunedVsNaiveBitwiseIdentical)
{
    // The Hamerly-bound path must skip work only, never change bits:
    // every (pruning, threads) combination produces the same clustering.
    const Matrix m = gaussianMatrix(3000, 8, 42);
    KMeans::Options opts;
    opts.k = 32;
    opts.restarts = 3;
    opts.seed = 77;
    opts.max_iterations = 40;
    opts.pruning = false;
    opts.threads = 1;
    const KMeansResult naive = KMeans::run(m, opts);
    EXPECT_EQ(naive.distance_counters.pruned, 0u);
    for (unsigned t : {1u, 2u, 4u}) {
        opts.pruning = true;
        opts.threads = t;
        const KMeansResult pruned = KMeans::run(m, opts);
        expectIdentical(naive, pruned);
        EXPECT_GT(pruned.distance_counters.pruned, 0u);
    }
}

TEST(Determinism, KMeansPrunedVsNaivePlusPlusSeeding)
{
    // Same bitwise contract on the k-means++ path: the norm-gap pruner in
    // the seeding min-distance update and the Hamerly bounds in Lloyd
    // must both be bit-neutral.
    const Matrix m = gaussianMatrix(2200, 6, 43);
    KMeans::Options opts;
    opts.k = 20;
    opts.restarts = 2;
    opts.seed = 19;
    opts.init = KMeans::Init::PlusPlus;
    opts.pruning = false;
    opts.threads = 1;
    const KMeansResult naive = KMeans::run(m, opts);
    for (unsigned t : {1u, 2u, 4u}) {
        opts.pruning = true;
        opts.threads = t;
        expectIdentical(naive, KMeans::run(m, opts));
    }
}

TEST(Determinism, GaSelectionThreadCountInvariant)
{
    // First 4 columns are independent signals, the rest noisy copies of
    // column 0 (same construction as test_ga.cc).
    stats::Rng rng(21);
    Matrix m(40, 12);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t c = 0; c < 4; ++c)
            m(r, c) = rng.nextGaussian();
        for (std::size_t c = 4; c < 12; ++c)
            m(r, c) = m(r, 0) + 0.01 * rng.nextGaussian();
    }
    const ga::FeatureSelector selector(m);
    ga::GaOptions opts;
    opts.target_count = 4;
    opts.seed = 31;
    opts.max_generations = 12;
    opts.threads = 1;
    const ga::GaResult serial = selector.select(opts);
    for (unsigned t : {2u, 4u}) {
        opts.threads = t;
        const ga::GaResult parallel = selector.select(opts);
        EXPECT_EQ(serial.selected, parallel.selected);
        EXPECT_EQ(serial.fitness, parallel.fitness);
        EXPECT_EQ(serial.generations, parallel.generations);
    }
}

TEST(Determinism, PcaCovarianceThreadCountInvariant)
{
    const Matrix m = gaussianMatrix(3000, 20, 13);
    const Matrix serial = stats::covarianceMatrix(m, 1);
    for (unsigned t : {2u, 4u})
        EXPECT_EQ(serial.maxAbsDiff(stats::covarianceMatrix(m, t)), 0.0);
}

TEST(Determinism, PcaFitThreadCountInvariant)
{
    const Matrix m = gaussianMatrix(2500, 16, 14);
    stats::Pca::Options opts;
    opts.threads = 1;
    const stats::Pca serial = stats::Pca::fit(m, opts);
    for (unsigned t : {2u, 4u}) {
        opts.threads = t;
        const stats::Pca parallel = stats::Pca::fit(m, opts);
        EXPECT_EQ(serial.numComponents(), parallel.numComponents());
        EXPECT_EQ(serial.eigenvalues(), parallel.eigenvalues());
        EXPECT_EQ(serial.loadings().maxAbsDiff(parallel.loadings()), 0.0);
        EXPECT_EQ(serial.transformRescaled(m).maxAbsDiff(
                      parallel.transformRescaled(m)),
                  0.0);
    }
}

/**
 * Flagship acceptance test: the entire pipeline — characterization,
 * sampling, PCA, clustering, suite comparison, GA key-characteristic
 * selection — is bitwise identical across threads = 1/2/4 with the same
 * seed. The cache is disabled so every run genuinely recomputes.
 */
TEST(Determinism, PipelineThreadCountInvariant)
{
    core::ExperimentConfig cfg;
    cfg.interval_instructions = 2000;
    cfg.interval_scale = 0.02;
    cfg.samples_per_benchmark = 20;
    cfg.kmeans_k = 24;
    cfg.kmeans_restarts = 2;
    cfg.num_prominent = 12;
    cfg.cache_dir.clear();

    cfg.threads = 1;
    const core::ExperimentOutputs serial = core::runFullExperiment(cfg);
    const stats::Matrix serial_phases =
        prominentPhaseMatrix(serial.sampled, serial.analysis);

    ga::GaOptions ga_opts;
    ga_opts.target_count = 4;
    ga_opts.seed = 17;
    ga_opts.max_generations = 6;
    ga_opts.population_size = 8;
    ga_opts.num_islands = 2;
    const ga::GaResult serial_ga =
        ga::FeatureSelector(serial_phases).select(ga_opts);

    for (unsigned t : {2u, 4u}) {
        cfg.threads = t;
        const core::ExperimentOutputs parallel =
            core::runFullExperiment(cfg);

        // Characterization (VM + profiler) and sampling.
        ASSERT_EQ(serial.characterization.intervals.size(),
                  parallel.characterization.intervals.size());
        EXPECT_EQ(serial.sampled.data.maxAbsDiff(parallel.sampled.data),
                  0.0);

        // Retained PCs and the rescaled space.
        EXPECT_EQ(serial.analysis.pca_components,
                  parallel.analysis.pca_components);
        EXPECT_EQ(serial.analysis.pca_explained,
                  parallel.analysis.pca_explained);
        EXPECT_EQ(serial.analysis.reduced.maxAbsDiff(
                      parallel.analysis.reduced),
                  0.0);

        // Cluster assignments and the derived suite comparison.
        expectIdentical(serial.analysis.clustering,
                        parallel.analysis.clustering);
        EXPECT_EQ(serial.comparison.coverage, parallel.comparison.coverage);
        EXPECT_EQ(serial.comparison.uniqueness,
                  parallel.comparison.uniqueness);

        // GA-selected key characteristics over the prominent phases.
        ga_opts.threads = t;
        const stats::Matrix parallel_phases =
            prominentPhaseMatrix(parallel.sampled, parallel.analysis);
        EXPECT_EQ(serial_phases.maxAbsDiff(parallel_phases), 0.0);
        const ga::GaResult parallel_ga =
            ga::FeatureSelector(parallel_phases).select(ga_opts);
        EXPECT_EQ(serial_ga.selected, parallel_ga.selected);
        EXPECT_EQ(serial_ga.fitness, parallel_ga.fitness);
    }
}

/**
 * Distance pruning on the full pipeline: a naive (pruning disabled,
 * serial) run is the oracle, and pruned runs at threads = 1/2/4 must
 * reproduce its clustering — assignment, sizes, centers, inertia, BIC —
 * bit for bit, along with the derived suite comparison.
 */
TEST(Determinism, PipelinePrunedVsNaiveBitwiseIdentical)
{
    core::ExperimentConfig cfg;
    cfg.interval_instructions = 2000;
    cfg.interval_scale = 0.02;
    cfg.samples_per_benchmark = 20;
    cfg.kmeans_k = 24;
    cfg.kmeans_restarts = 2;
    cfg.num_prominent = 12;
    cfg.cache_dir.clear();

    cfg.kmeans_pruning = false;
    cfg.threads = 1;
    const core::ExperimentOutputs naive = core::runFullExperiment(cfg);
    EXPECT_EQ(naive.analysis.clustering.distance_counters.pruned, 0u);

    for (unsigned t : {1u, 2u, 4u}) {
        cfg.kmeans_pruning = true;
        cfg.threads = t;
        const core::ExperimentOutputs pruned = core::runFullExperiment(cfg);
        expectIdentical(naive.analysis.clustering,
                        pruned.analysis.clustering);
        EXPECT_EQ(naive.analysis.reduced.maxAbsDiff(pruned.analysis.reduced),
                  0.0);
        EXPECT_EQ(naive.comparison.coverage, pruned.comparison.coverage);
        EXPECT_EQ(naive.comparison.uniqueness, pruned.comparison.uniqueness);
        EXPECT_GT(pruned.analysis.clustering.distance_counters.pruned, 0u);
    }
}

} // namespace
