/**
 * @file
 * Tests for the LRU stack-distance analyzer, including the classic
 * cross-check: the miss rate predicted from the reuse-distance histogram
 * must match a fully-associative LRU cache simulation.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "mica/reuse.hh"
#include "stats/rng.hh"
#include "vm/cpu.hh"
#include "vm/timing.hh"

namespace {

using namespace mica;
using profiler::ReuseDistanceAnalyzer;

TEST(ReuseDistance, ImmediateReuseIsDistanceZero)
{
    ReuseDistanceAnalyzer rd;
    rd.access(0x1000);
    rd.access(0x1000);
    rd.access(0x1008); // same 64B block
    EXPECT_EQ(rd.coldAccesses(), 1u);
    EXPECT_EQ(rd.reuses(), 2u);
    EXPECT_EQ(rd.histogram()[0], 2u);
    EXPECT_DOUBLE_EQ(rd.meanDistance(), 0.0);
}

TEST(ReuseDistance, DistanceCountsDistinctBlocks)
{
    ReuseDistanceAnalyzer rd;
    rd.access(0 << 6);
    rd.access(1 << 6);
    rd.access(2 << 6);
    rd.access(0 << 6); // 2 distinct blocks in between
    EXPECT_EQ(rd.reuses(), 1u);
    EXPECT_DOUBLE_EQ(rd.meanDistance(), 2.0);
    // Distance 2 lands in bucket [2,4).
    EXPECT_EQ(rd.histogram()[2], 1u);
}

TEST(ReuseDistance, RepeatedScanHasDistanceEqualToWorkingSet)
{
    ReuseDistanceAnalyzer rd;
    const int blocks = 64;
    for (int pass = 0; pass < 3; ++pass)
        for (int b = 0; b < blocks; ++b)
            rd.access(static_cast<std::uint64_t>(b) << 6);
    EXPECT_EQ(rd.coldAccesses(), 64u);
    EXPECT_EQ(rd.reuses(), 128u);
    // Every reuse sees exactly 63 distinct other blocks -> bucket [32,64).
    EXPECT_DOUBLE_EQ(rd.meanDistance(), 63.0);
    EXPECT_EQ(rd.histogram()[6], 128u);
}

TEST(ReuseDistance, MissRatePredictionForScans)
{
    ReuseDistanceAnalyzer rd;
    const int blocks = 64;
    for (int pass = 0; pass < 10; ++pass)
        for (int b = 0; b < blocks; ++b)
            rd.access(static_cast<std::uint64_t>(b) << 6);
    // A cache of >= 64 blocks holds the loop: only cold misses remain.
    EXPECT_NEAR(rd.missRateForCapacity(128), 64.0 / 640.0, 1e-9);
    // A cache of 32 blocks thrashes completely under LRU.
    EXPECT_NEAR(rd.missRateForCapacity(32), 1.0, 1e-9);
}

TEST(ReuseDistance, SurvivesCompaction)
{
    // Push more accesses than the initial timestamp capacity (2^16) with
    // a small working set: compaction must keep distances exact.
    ReuseDistanceAnalyzer rd;
    const int blocks = 8;
    for (int i = 0; i < 200000; ++i)
        rd.access(static_cast<std::uint64_t>(i % blocks) << 6);
    EXPECT_EQ(rd.coldAccesses(), 8u);
    EXPECT_DOUBLE_EQ(rd.meanDistance(), 7.0);
}

TEST(ReuseDistance, MatchesFullyAssociativeLruSimulation)
{
    // Ground truth: vm::CacheModel with ways == blocks is fully
    // associative LRU. Drive both with the same random access stream and
    // compare non-cold miss behaviour.
    stats::Rng rng(17);
    ReuseDistanceAnalyzer rd;
    const std::uint64_t capacity_blocks = 64;
    vm::CacheModel cache(static_cast<std::uint32_t>(capacity_blocks * 64),
                         64, static_cast<std::uint32_t>(capacity_blocks));

    std::uint64_t misses = 0, total = 0;
    for (int i = 0; i < 50000; ++i) {
        // Zipf-ish mixture: hot region + occasional far accesses.
        const std::uint64_t block = rng.nextBool(0.8)
            ? rng.nextBelow(48)
            : rng.nextBelow(4096);
        const std::uint64_t addr = block << 6;
        rd.access(addr);
        misses += !cache.access(addr);
        ++total;
    }
    const double simulated =
        static_cast<double>(misses) / static_cast<double>(total);
    const double predicted = rd.missRateForCapacity(capacity_blocks);
    EXPECT_NEAR(predicted, simulated, 0.02)
        << "stack-distance theory vs LRU simulation";
}

TEST(ReuseDistance, AsTraceSink)
{
    const auto prog = assembler::assemble(R"(
        .data
        buf: .zero 8192
        .text
        addi x5, x0, buf
        addi x6, x0, 64
    loop:
        ld x7, 0(x5)
        addi x5, x5, 64
        addi x6, x6, -1
        bne x6, x0, loop
        addi x5, x0, buf
        addi x6, x0, 64
        jal x0, loop
    )");
    vm::Cpu cpu(prog);
    ReuseDistanceAnalyzer rd;
    (void)cpu.run(50000, &rd);
    EXPECT_EQ(rd.coldAccesses(), 64u); // 64 iterations x 64B stride
    EXPECT_GT(rd.reuses(), 100u);
    // The scan loop re-touches each block after 63 distinct others.
    EXPECT_NEAR(rd.meanDistance(), 63.0, 1.0);
}

TEST(ReuseDistance, ColdOnlyStreamHasNoReuses)
{
    ReuseDistanceAnalyzer rd;
    for (int i = 0; i < 1000; ++i)
        rd.access(static_cast<std::uint64_t>(i) << 6);
    EXPECT_EQ(rd.reuses(), 0u);
    EXPECT_EQ(rd.coldAccesses(), 1000u);
    EXPECT_DOUBLE_EQ(rd.missRateForCapacity(1u << 20), 1.0)
        << "cold misses always miss";
}

} // namespace
