/**
 * @file
 * Unit tests for column statistics, normalization and Pearson correlation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hh"
#include "stats/summary.hh"

namespace {

using mica::stats::Matrix;

TEST(Summary, ColumnStatsKnownValues)
{
    Matrix m = Matrix::fromRows({{1, 10}, {3, 10}, {5, 10}});
    const auto cs = mica::stats::columnStats(m);
    EXPECT_DOUBLE_EQ(cs.mean[0], 3.0);
    EXPECT_DOUBLE_EQ(cs.mean[1], 10.0);
    EXPECT_NEAR(cs.stddev[0], std::sqrt(8.0 / 3.0), 1e-12);
    EXPECT_DOUBLE_EQ(cs.stddev[1], 0.0);
}

TEST(Summary, NormalizeProducesZeroMeanUnitVariance)
{
    mica::stats::Rng rng(1);
    Matrix m(200, 3);
    for (std::size_t r = 0; r < 200; ++r) {
        m(r, 0) = rng.uniform(5.0, 9.0);
        m(r, 1) = rng.nextGaussian() * 10.0 - 4.0;
        m(r, 2) = rng.nextDouble();
    }
    const Matrix n = mica::stats::normalizeColumns(m);
    const auto cs = mica::stats::columnStats(n);
    for (std::size_t c = 0; c < 3; ++c) {
        EXPECT_NEAR(cs.mean[c], 0.0, 1e-9);
        EXPECT_NEAR(cs.stddev[c], 1.0, 1e-9);
    }
}

TEST(Summary, NormalizeConstantColumnToZero)
{
    Matrix m = Matrix::fromRows({{7, 1}, {7, 2}, {7, 3}});
    const Matrix n = mica::stats::normalizeColumns(m);
    for (std::size_t r = 0; r < 3; ++r)
        EXPECT_EQ(n(r, 0), 0.0);
}

TEST(Summary, MeanAndVariance)
{
    const double v[] = {2.0, 4.0, 6.0, 8.0};
    EXPECT_DOUBLE_EQ(mica::stats::mean(v), 5.0);
    EXPECT_DOUBLE_EQ(mica::stats::variance(v), 5.0);
}

TEST(Summary, MeanOfEmptyIsZero)
{
    EXPECT_EQ(mica::stats::mean({}), 0.0);
    EXPECT_EQ(mica::stats::variance({}), 0.0);
}

TEST(Summary, PearsonPerfectPositive)
{
    const double a[] = {1, 2, 3, 4, 5};
    const double b[] = {10, 20, 30, 40, 50};
    EXPECT_NEAR(mica::stats::pearson(a, b), 1.0, 1e-12);
}

TEST(Summary, PearsonPerfectNegative)
{
    const double a[] = {1, 2, 3, 4};
    const double b[] = {8, 6, 4, 2};
    EXPECT_NEAR(mica::stats::pearson(a, b), -1.0, 1e-12);
}

TEST(Summary, PearsonConstantInputIsZero)
{
    const double a[] = {1, 1, 1};
    const double b[] = {1, 2, 3};
    EXPECT_EQ(mica::stats::pearson(a, b), 0.0);
}

TEST(Summary, PearsonSymmetric)
{
    const double a[] = {1, 5, 2, 8, 3};
    const double b[] = {2, 3, 9, 1, 4};
    EXPECT_DOUBLE_EQ(mica::stats::pearson(a, b),
                     mica::stats::pearson(b, a));
}

TEST(Summary, PearsonInvariantToAffineTransform)
{
    const double a[] = {1, 5, 2, 8, 3};
    const double b[] = {2, 3, 9, 1, 4};
    double b2[5];
    for (int i = 0; i < 5; ++i)
        b2[i] = 3.0 * b[i] + 7.0;
    EXPECT_NEAR(mica::stats::pearson(a, b), mica::stats::pearson(a, b2),
                1e-12);
}

TEST(Summary, PearsonNearZeroForIndependentData)
{
    mica::stats::Rng rng(4);
    std::vector<double> a(5000), b(5000);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = rng.nextGaussian();
        b[i] = rng.nextGaussian();
    }
    EXPECT_NEAR(mica::stats::pearson(a, b), 0.0, 0.05);
}

TEST(Summary, SpearmanIsRankBasedNotLinear)
{
    // A monotone but non-linear relation: perfect rank agreement even
    // though the linear correlation is strictly below 1.
    const double a[] = {1, 2, 3, 4, 5};
    const double b[] = {1, 8, 27, 64, 125};
    EXPECT_NEAR(mica::stats::spearman(a, b), 1.0, 1e-12);
    EXPECT_LT(mica::stats::pearson(a, b), 1.0);
}

TEST(Summary, SpearmanPerfectNegative)
{
    const double a[] = {1, 2, 3, 4};
    const double b[] = {1000, 100, 10, 1};
    EXPECT_NEAR(mica::stats::spearman(a, b), -1.0, 1e-12);
}

TEST(Summary, SpearmanAveragesTiedRanks)
{
    // The tied pair in `a` gets the average rank 2.5; the closed form for
    // this case is sqrt(0.9).
    const double a[] = {1, 2, 2, 3};
    const double b[] = {10, 20, 30, 40};
    EXPECT_NEAR(mica::stats::spearman(a, b), std::sqrt(0.9), 1e-12);
}

TEST(Summary, SpearmanConstantInputIsZero)
{
    const double a[] = {4, 4, 4};
    const double b[] = {1, 2, 3};
    EXPECT_EQ(mica::stats::spearman(a, b), 0.0);
}

TEST(Summary, PairwiseDistancesCondensedLayout)
{
    Matrix m = Matrix::fromRows({{0, 0}, {3, 4}, {0, 8}});
    const auto d = mica::stats::pairwiseDistances(m);
    ASSERT_EQ(d.size(), 3u); // (0,1), (0,2), (1,2)
    EXPECT_DOUBLE_EQ(d[0], 5.0);
    EXPECT_DOUBLE_EQ(d[1], 8.0);
    EXPECT_DOUBLE_EQ(d[2], 5.0);
}

/** Pearson is bounded in [-1, 1] for arbitrary random inputs. */
class PearsonBoundsTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PearsonBoundsTest, WithinBounds)
{
    mica::stats::Rng rng(GetParam());
    std::vector<double> a(50), b(50);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = rng.uniform(-100.0, 100.0);
        b[i] = rng.uniform(-100.0, 100.0);
    }
    const double r = mica::stats::pearson(a, b);
    EXPECT_GE(r, -1.0 - 1e-12);
    EXPECT_LE(r, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PearsonBoundsTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace
