/**
 * @file
 * Unit tests for the shared thread pool (util/thread_pool.hh): index
 * coverage, exception propagation, reuse across submissions, nesting, and
 * the resolveThreads clamping convention.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hh"

namespace {

using mica::util::ThreadPool;

TEST(ThreadPool, EmptyRangeRunsNothing)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);

    mica::util::parallelFor(4, 0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, FewerItemsThanThreads)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(3);
    pool.parallelFor(3, [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EveryIndexExecutesExactlyOnce)
{
    ThreadPool pool(4);
    const std::size_t n = 5000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ExceptionFromTaskPropagates)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(100,
                                  [&](std::size_t i) {
                                      if (i == 17)
                                          throw std::runtime_error("task");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, LowestIndexExceptionWins)
{
    ThreadPool pool(4);
    // All indices still run; afterwards the exception with the lowest
    // index is rethrown regardless of scheduling.
    std::atomic<int> calls{0};
    try {
        pool.parallelFor(64, [&](std::size_t i) {
            ++calls;
            if (i == 5 || i == 40)
                throw std::runtime_error("idx" + std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "idx5");
    }
    EXPECT_EQ(calls.load(), 64);
}

TEST(ThreadPool, PoolReuseAcrossSubmissions)
{
    ThreadPool pool(3);
    for (int round = 0; round < 10; ++round) {
        std::atomic<long> sum{0};
        pool.parallelFor(100, [&](std::size_t i) {
            sum += static_cast<long>(i);
        });
        EXPECT_EQ(sum.load(), 4950);
    }
}

TEST(ThreadPool, SubmitReturnsFutureValue)
{
    ThreadPool pool(2);
    auto a = pool.submit([]() { return 42; });
    auto b = pool.submit([]() { return std::string("ok"); });
    EXPECT_EQ(a.get(), 42);
    EXPECT_EQ(b.get(), "ok");
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture)
{
    ThreadPool pool(2);
    auto f = pool.submit([]() -> int {
        throw std::logic_error("boom");
    });
    EXPECT_THROW((void)f.get(), std::logic_error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    // The calling thread always participates, so inner loops make progress
    // even when every pool worker is busy with outer iterations.
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallelFor(4, [&](std::size_t) {
        pool.parallelFor(4, [&](std::size_t) { ++calls; });
    });
    EXPECT_EQ(calls.load(), 16);
}

TEST(ThreadPool, SharedPoolIsUsable)
{
    std::atomic<int> calls{0};
    ThreadPool::shared().parallelFor(10, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 10);
    EXPECT_GE(ThreadPool::shared().size(), 1u);
}

TEST(ThreadPool, SerialFallbackRunsInIndexOrder)
{
    std::vector<std::size_t> order;
    mica::util::parallelFor(1, 5, [&](std::size_t i) {
        order.push_back(i);
    });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ResolveThreadsClampsToWorkItems)
{
    using mica::util::resolveThreads;
    EXPECT_EQ(resolveThreads(8, 3), 3u);
    EXPECT_EQ(resolveThreads(2, 100), 2u);
    EXPECT_EQ(resolveThreads(8, 0), 1u);
    EXPECT_EQ(resolveThreads(1, 1), 1u);
    // 0 = hardware concurrency (>= 1 on any platform).
    EXPECT_GE(resolveThreads(0, 1000), 1u);
    EXPECT_LE(resolveThreads(0, 2), 2u);
}

} // namespace
