/**
 * @file
 * Tests for interval sampling (equal benchmark weight, replacement,
 * determinism).
 */

#include <gtest/gtest.h>

#include <map>

#include "core/sampling.hh"

namespace {

using namespace mica;
using core::CharacterizationResult;

CharacterizationResult
makeResult(const std::vector<std::uint32_t> &counts)
{
    CharacterizationResult r;
    for (std::uint32_t b = 0; b < counts.size(); ++b) {
        r.benchmark_ids.push_back("S/b" + std::to_string(b));
        r.benchmark_names.push_back("b" + std::to_string(b));
        r.benchmark_suites.push_back("S");
        for (std::uint32_t i = 0; i < counts[b]; ++i) {
            core::IntervalRecord rec;
            rec.benchmark = b;
            rec.input = 0;
            rec.values[0] = static_cast<double>(b);
            rec.values[1] = static_cast<double>(i);
            r.intervals.push_back(rec);
        }
    }
    return r;
}

TEST(Sampling, EqualRowsPerBenchmark)
{
    const auto chars = makeResult({100, 3, 17});
    const auto ds = core::sampleIntervals(chars, 25, 1);
    EXPECT_EQ(ds.data.rows(), 75u);
    std::vector<int> per_benchmark(3, 0);
    for (auto b : ds.benchmark_of_row)
        ++per_benchmark[b];
    for (int count : per_benchmark)
        EXPECT_EQ(count, 25);
}

TEST(Sampling, ReplacementForShortBenchmarks)
{
    // Benchmark 1 has 3 intervals but contributes 25 samples: some of its
    // intervals must appear several times.
    const auto chars = makeResult({100, 3});
    const auto ds = core::sampleIntervals(chars, 25, 2);
    std::map<std::uint32_t, int> hits;
    for (std::size_t row = 0; row < ds.data.rows(); ++row)
        if (ds.benchmark_of_row[row] == 1)
            ++hits[ds.source_interval[row]];
    int max_hits = 0;
    for (const auto &[idx, n] : hits)
        max_hits = std::max(max_hits, n);
    EXPECT_GT(max_hits, 1);
}

TEST(Sampling, RowsComeFromTheRightBenchmark)
{
    const auto chars = makeResult({10, 20});
    const auto ds = core::sampleIntervals(chars, 15, 3);
    for (std::size_t row = 0; row < ds.data.rows(); ++row) {
        EXPECT_EQ(ds.data(row, 0),
                  static_cast<double>(ds.benchmark_of_row[row]));
        EXPECT_EQ(chars.intervals[ds.source_interval[row]].benchmark,
                  ds.benchmark_of_row[row]);
    }
}

TEST(Sampling, DeterministicForSeed)
{
    const auto chars = makeResult({30, 40});
    const auto a = core::sampleIntervals(chars, 20, 7);
    const auto b = core::sampleIntervals(chars, 20, 7);
    EXPECT_EQ(a.source_interval, b.source_interval);
    const auto c = core::sampleIntervals(chars, 20, 8);
    EXPECT_NE(a.source_interval, c.source_interval);
}

TEST(Sampling, ZeroPerBenchmarkThrows)
{
    const auto chars = makeResult({5});
    EXPECT_THROW((void)core::sampleIntervals(chars, 0, 1),
                 std::invalid_argument);
}

TEST(Sampling, EmptyBenchmarkThrows)
{
    auto chars = makeResult({5});
    chars.benchmark_ids.push_back("S/empty");
    chars.benchmark_names.push_back("empty");
    chars.benchmark_suites.push_back("S");
    EXPECT_THROW((void)core::sampleIntervals(chars, 5, 1),
                 std::runtime_error);
}

TEST(Sampling, AllIntervalsKeepsEveryRowOnce)
{
    const auto chars = makeResult({4, 6});
    const auto ds = core::allIntervals(chars);
    EXPECT_EQ(ds.data.rows(), 10u);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_EQ(ds.source_interval[i], i);
}

} // namespace
