/**
 * @file
 * Unit tests for the PPM branch predictability metric.
 */

#include <gtest/gtest.h>

#include "mica/ppm.hh"
#include "stats/rng.hh"

namespace {

using mica::profiler::PpmPredictor;

/** Feed a repeating pattern; return the miss rate over n branches after a
 * warmup prefix. */
double
missRate(PpmPredictor &ppm, const std::vector<bool> &pattern, int total,
         int warmup, std::uint64_t pc = 0x1000)
{
    int misses = 0;
    for (int i = 0; i < total; ++i) {
        const bool taken = pattern[static_cast<std::size_t>(i) %
                                   pattern.size()];
        const bool correct = ppm.predictAndTrain(pc, taken);
        if (i >= warmup && !correct)
            ++misses;
    }
    return static_cast<double>(misses) / (total - warmup);
}

TEST(Ppm, AlwaysTakenLearned)
{
    PpmPredictor ppm(8, false, false);
    EXPECT_LT(missRate(ppm, {true}, 2000, 100), 0.01);
}

TEST(Ppm, AlwaysNotTakenLearned)
{
    PpmPredictor ppm(8, false, false);
    EXPECT_LT(missRate(ppm, {false}, 2000, 100), 0.01);
}

TEST(Ppm, AlternatingPatternLearned)
{
    PpmPredictor ppm(4, false, false);
    EXPECT_LT(missRate(ppm, {true, false}, 2000, 200), 0.01);
}

TEST(Ppm, LongPeriodicPatternNeedsLongHistory)
{
    // Period-10 pattern: 5 taken, 5 not taken. With 12 bits of history the
    // context uniquely determines the next outcome; with 4 bits several
    // contexts are ambiguous (e.g. four taken in a row happens at two
    // distinct phase positions with different successors... 4 bits of
    // "tttt" follows both t and n).
    std::vector<bool> pattern;
    for (int i = 0; i < 5; ++i)
        pattern.push_back(true);
    for (int i = 0; i < 5; ++i)
        pattern.push_back(false);

    PpmPredictor short_hist(4, false, false);
    PpmPredictor long_hist(12, false, false);
    const double short_miss = missRate(short_hist, pattern, 4000, 1000);
    const double long_miss = missRate(long_hist, pattern, 4000, 1000);
    EXPECT_LT(long_miss, 0.01);
    EXPECT_GT(short_miss, long_miss + 0.05);
}

TEST(Ppm, RandomOutcomesNearFiftyPercent)
{
    PpmPredictor ppm(12, false, false);
    mica::stats::Rng rng(9);
    int misses = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        misses += !ppm.predictAndTrain(0x1000, rng.nextBool(0.5));
    const double rate = static_cast<double>(misses) / n;
    EXPECT_GT(rate, 0.4);
    EXPECT_LT(rate, 0.6);
}

TEST(Ppm, PerAddressTableSeparatesConflictingBranches)
{
    // Two branches with opposite constant behaviour at different pcs.
    // A local-history per-address predictor keeps them apart.
    PpmPredictor pas(4, true, true);
    int misses = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        misses += !pas.predictAndTrain(0x1000, true);
        misses += !pas.predictAndTrain(0x2000, false);
    }
    EXPECT_LT(static_cast<double>(misses) / (2 * n), 0.01);
}

TEST(Ppm, GlobalHistoryCapturesCorrelatedBranches)
{
    // Branch B always equals the preceding branch A's outcome. A global
    // history predictor learns B perfectly even though A is random.
    PpmPredictor gag(8, false, false);
    mica::stats::Rng rng(5);
    int b_misses = 0;
    const int n = 5000;
    int counted = 0;
    for (int i = 0; i < n; ++i) {
        const bool a = rng.nextBool(0.5);
        (void)gag.predictAndTrain(0x1000, a);
        const bool correct = gag.predictAndTrain(0x2000, a);
        if (i > n / 2) {
            ++counted;
            b_misses += !correct;
        }
    }
    EXPECT_LT(static_cast<double>(b_misses) / counted, 0.1);
}

TEST(Ppm, LocalHistoryIgnoresOtherBranches)
{
    // Branch at pc2 strictly alternates; interleaved random noise from pc1
    // must not disturb a local-history predictor.
    PpmPredictor pag(8, true, false);
    mica::stats::Rng rng(6);
    int misses = 0;
    int counted = 0;
    bool flip = false;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        (void)pag.predictAndTrain(0x1000, rng.nextBool(0.5));
        const bool correct = pag.predictAndTrain(0x2000, flip);
        flip = !flip;
        if (i > 1000) {
            ++counted;
            misses += !correct;
        }
    }
    EXPECT_LT(static_cast<double>(misses) / counted, 0.05);
}

TEST(Ppm, DeterministicAcrossInstances)
{
    PpmPredictor a(8, false, true), b(8, false, true);
    mica::stats::Rng rng(7);
    for (int i = 0; i < 3000; ++i) {
        const bool taken = rng.nextBool(0.4);
        const std::uint64_t pc = 0x1000 + (i % 7) * 8;
        ASSERT_EQ(a.predictAndTrain(pc, taken),
                  b.predictAndTrain(pc, taken));
    }
}

} // namespace
