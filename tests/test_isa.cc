/**
 * @file
 * Unit tests for the SRISC ISA: opcode metadata, encode/decode round
 * trips, operand extraction and disassembly.
 */

#include <gtest/gtest.h>

#include "isa/instruction.hh"
#include "isa/opcode.hh"

namespace {

using namespace mica::isa;

constexpr std::size_t kNumOpcodes =
    static_cast<std::size_t>(Opcode::NumOpcodes);

TEST(Opcode, EveryOpcodeHasMetadata)
{
    for (std::size_t i = 0; i < kNumOpcodes; ++i) {
        const auto op = static_cast<Opcode>(i);
        EXPECT_FALSE(mnemonic(op).empty());
    }
}

TEST(Opcode, MnemonicsAreUnique)
{
    for (std::size_t i = 0; i < kNumOpcodes; ++i)
        for (std::size_t j = i + 1; j < kNumOpcodes; ++j)
            EXPECT_NE(mnemonic(static_cast<Opcode>(i)),
                      mnemonic(static_cast<Opcode>(j)));
}

TEST(Opcode, MnemonicRoundTrip)
{
    for (std::size_t i = 0; i < kNumOpcodes; ++i) {
        const auto op = static_cast<Opcode>(i);
        EXPECT_EQ(opcodeFromMnemonic(mnemonic(op)), op);
    }
}

TEST(Opcode, UnknownMnemonic)
{
    EXPECT_EQ(opcodeFromMnemonic("bogus"), Opcode::NumOpcodes);
}

TEST(Opcode, Predicates)
{
    EXPECT_TRUE(isLoad(Opcode::Ld));
    EXPECT_TRUE(isLoad(Opcode::Fld));
    EXPECT_FALSE(isLoad(Opcode::Sd));
    EXPECT_TRUE(isStore(Opcode::Sb));
    EXPECT_TRUE(isStore(Opcode::Fsd));
    EXPECT_TRUE(isCondBranch(Opcode::Beq));
    EXPECT_FALSE(isCondBranch(Opcode::Jal));
    EXPECT_TRUE(isControl(Opcode::Jal));
    EXPECT_TRUE(isControl(Opcode::Jalr));
    EXPECT_TRUE(isControl(Opcode::Bgeu));
    EXPECT_FALSE(isControl(Opcode::Add));
    EXPECT_TRUE(isFpOp(Opcode::Fadd));
    EXPECT_TRUE(isFpOp(Opcode::Fld));
    EXPECT_TRUE(isFpOp(Opcode::Cvtif));
    EXPECT_TRUE(isFpOp(Opcode::Fmov));
    EXPECT_FALSE(isFpOp(Opcode::Add));
}

TEST(Opcode, MemBytes)
{
    EXPECT_EQ(opcodeInfo(Opcode::Lb).mem_bytes, 1);
    EXPECT_EQ(opcodeInfo(Opcode::Lh).mem_bytes, 2);
    EXPECT_EQ(opcodeInfo(Opcode::Lw).mem_bytes, 4);
    EXPECT_EQ(opcodeInfo(Opcode::Ld).mem_bytes, 8);
    EXPECT_EQ(opcodeInfo(Opcode::Fsd).mem_bytes, 8);
    EXPECT_EQ(opcodeInfo(Opcode::Add).mem_bytes, 0);
}

TEST(Opcode, RegisterNames)
{
    EXPECT_EQ(intRegName(0), "x0");
    EXPECT_EQ(intRegName(31), "x31");
    EXPECT_EQ(fpRegName(7), "f7");
}

/** Encode/decode round trip, parameterized over all opcodes. */
class EncodeRoundTripTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(EncodeRoundTripTest, RoundTrips)
{
    Instruction in;
    in.op = static_cast<Opcode>(GetParam());
    in.rd = 5;
    in.rs1 = 17;
    in.rs2 = 31;
    for (std::int64_t imm : {0L, 1L, -1L, 4096L, -4096L,
                             static_cast<long>(kImmMax),
                             static_cast<long>(kImmMin)}) {
        in.imm = imm;
        const Instruction out = decode(encode(in));
        EXPECT_EQ(out, in) << "imm=" << imm;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, EncodeRoundTripTest,
    ::testing::Range<std::size_t>(0, kNumOpcodes));

TEST(Encode, ImmediateOutOfRangeThrows)
{
    Instruction in{Opcode::Addi, 1, 2, 0, kImmMax + 1};
    EXPECT_THROW((void)encode(in), std::out_of_range);
    in.imm = kImmMin - 1;
    EXPECT_THROW((void)encode(in), std::out_of_range);
}

TEST(Encode, RegisterOutOfRangeThrows)
{
    Instruction in{Opcode::Add, 32, 0, 0, 0};
    EXPECT_THROW((void)encode(in), std::out_of_range);
}

TEST(Decode, UnknownOpcodeFieldThrows)
{
    const std::uint64_t word = 0xfffULL << 52;
    EXPECT_THROW((void)decode(word), std::invalid_argument);
}

TEST(Instruction, SourcesRRR)
{
    Instruction in{Opcode::Add, 3, 4, 5, 0};
    const auto src = in.sources();
    ASSERT_EQ(src.count, 2);
    EXPECT_EQ(src.regs[0].index, 4);
    EXPECT_EQ(src.regs[1].index, 5);
    EXPECT_EQ(src.regs[0].file, RegOperand::File::Int);
    ASSERT_TRUE(in.hasDest());
    EXPECT_EQ(in.dest().index, 3);
}

TEST(Instruction, SourcesStore)
{
    Instruction in{Opcode::Sd, 0, 10, 11, 16};
    const auto src = in.sources();
    ASSERT_EQ(src.count, 2);
    EXPECT_FALSE(in.hasDest());
}

TEST(Instruction, SourcesFpStore)
{
    Instruction in{Opcode::Fsd, 0, 10, 3, 0};
    const auto src = in.sources();
    ASSERT_EQ(src.count, 2);
    EXPECT_EQ(src.regs[0].file, RegOperand::File::Int);
    EXPECT_EQ(src.regs[1].file, RegOperand::File::Fp);
}

TEST(Instruction, FmaddReadsAccumulator)
{
    Instruction in{Opcode::Fmadd, 1, 2, 3, 0};
    const auto src = in.sources();
    ASSERT_EQ(src.count, 3);
    EXPECT_EQ(src.regs[0].index, 1); // rd is read
    ASSERT_TRUE(in.hasDest());
    EXPECT_EQ(in.dest().file, RegOperand::File::Fp);
}

TEST(Instruction, FcmpWritesIntFile)
{
    Instruction in{Opcode::Fcmplt, 7, 1, 2, 0};
    EXPECT_EQ(in.dest().file, RegOperand::File::Int);
    const auto src = in.sources();
    EXPECT_EQ(src.regs[0].file, RegOperand::File::Fp);
}

TEST(Instruction, ConversionsCrossFiles)
{
    Instruction itf{Opcode::Cvtif, 4, 9, 0, 0};
    EXPECT_EQ(itf.dest().file, RegOperand::File::Fp);
    EXPECT_EQ(itf.sources().regs[0].file, RegOperand::File::Int);
    Instruction fti{Opcode::Cvtfi, 4, 9, 0, 0};
    EXPECT_EQ(fti.dest().file, RegOperand::File::Int);
    EXPECT_EQ(fti.sources().regs[0].file, RegOperand::File::Fp);
}

TEST(Instruction, WritesToX0Discarded)
{
    Instruction in{Opcode::Add, 0, 1, 2, 0};
    EXPECT_FALSE(in.hasDest());
}

TEST(Instruction, CallAndReturnDetection)
{
    Instruction call{Opcode::Jal, kRegRa, 0, 0, 64};
    EXPECT_TRUE(call.isCall());
    EXPECT_FALSE(call.isReturn());

    Instruction icall{Opcode::Jalr, kRegRa, 9, 0, 0};
    EXPECT_TRUE(icall.isCall());

    Instruction ret{Opcode::Jalr, kRegZero, kRegRa, 0, 0};
    EXPECT_TRUE(ret.isReturn());
    EXPECT_FALSE(ret.isCall());

    Instruction plain{Opcode::Jal, kRegZero, 0, 0, 8};
    EXPECT_FALSE(plain.isCall());
    EXPECT_FALSE(plain.isReturn());
}

TEST(Instruction, MoveDetection)
{
    Instruction li{Opcode::Addi, 5, kRegZero, 0, 42};
    EXPECT_TRUE(li.isMove());
    Instruction addi{Opcode::Addi, 5, 6, 0, 42};
    EXPECT_FALSE(addi.isMove());
    Instruction fmov{Opcode::Fmov, 1, 2, 0, 0};
    EXPECT_TRUE(fmov.isMove());
}

TEST(Instruction, Disassembly)
{
    EXPECT_EQ((Instruction{Opcode::Add, 3, 4, 5, 0}).disassemble(),
              "add x3, x4, x5");
    EXPECT_EQ((Instruction{Opcode::Addi, 3, 4, 0, -7}).disassemble(),
              "addi x3, x4, -7");
    EXPECT_EQ((Instruction{Opcode::Ld, 3, 4, 0, 16}).disassemble(),
              "ld x3, 16(x4)");
    EXPECT_EQ((Instruction{Opcode::Sd, 0, 4, 7, 8}).disassemble(),
              "sd x7, 8(x4)");
    EXPECT_EQ((Instruction{Opcode::Fadd, 1, 2, 3, 0}).disassemble(),
              "fadd f1, f2, f3");
    EXPECT_EQ((Instruction{Opcode::Fld, 1, 4, 0, 24}).disassemble(),
              "fld f1, 24(x4)");
    EXPECT_EQ((Instruction{Opcode::Beq, 0, 1, 2, -16}).disassemble(),
              "beq x1, x2, -16");
    EXPECT_EQ((Instruction{Opcode::Jal, 1, 0, 0, 32}).disassemble(),
              "jal x1, 32");
    EXPECT_EQ((Instruction{Opcode::Nop, 0, 0, 0, 0}).disassemble(), "nop");
    EXPECT_EQ((Instruction{Opcode::Fcmplt, 3, 1, 2, 0}).disassemble(),
              "fcmplt x3, f1, f2");
}

} // namespace
