/**
 * @file
 * Unit tests for the Jacobi eigensolver and covariance computation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/eigen.hh"
#include "stats/rng.hh"

namespace {

using mica::stats::Matrix;

TEST(Eigen, DiagonalMatrix)
{
    Matrix d = Matrix::fromRows({{3, 0, 0}, {0, 7, 0}, {0, 0, 1}});
    const auto e = mica::stats::jacobiEigenSymmetric(d);
    ASSERT_EQ(e.values.size(), 3u);
    EXPECT_NEAR(e.values[0], 7.0, 1e-10);
    EXPECT_NEAR(e.values[1], 3.0, 1e-10);
    EXPECT_NEAR(e.values[2], 1.0, 1e-10);
}

TEST(Eigen, Known2x2)
{
    // [[2,1],[1,2]] has eigenvalues 3 and 1.
    Matrix m = Matrix::fromRows({{2, 1}, {1, 2}});
    const auto e = mica::stats::jacobiEigenSymmetric(m);
    EXPECT_NEAR(e.values[0], 3.0, 1e-10);
    EXPECT_NEAR(e.values[1], 1.0, 1e-10);
    // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
    EXPECT_NEAR(std::fabs(e.vectors(0, 0)), std::sqrt(0.5), 1e-8);
    EXPECT_NEAR(std::fabs(e.vectors(1, 0)), std::sqrt(0.5), 1e-8);
}

TEST(Eigen, NonSquareThrows)
{
    Matrix m(2, 3);
    EXPECT_THROW((void)mica::stats::jacobiEigenSymmetric(m),
                 std::invalid_argument);
}

/** Random symmetric matrices of several sizes: check the decomposition
 * properties rather than specific values. */
class EigenPropertyTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(EigenPropertyTest, ReconstructsAndIsOrthogonal)
{
    const std::size_t n = GetParam();
    mica::stats::Rng rng(n * 17 + 1);
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j)
            m(i, j) = m(j, i) = rng.uniform(-2.0, 2.0);

    const auto e = mica::stats::jacobiEigenSymmetric(m);

    // Eigenvalues sorted descending.
    for (std::size_t i = 0; i + 1 < n; ++i)
        EXPECT_GE(e.values[i], e.values[i + 1] - 1e-12);

    // V^T V == I (orthonormal columns).
    const Matrix vtv = e.vectors.transposed().multiply(e.vectors);
    EXPECT_LT(vtv.maxAbsDiff(Matrix::identity(n)), 1e-8);

    // V diag(lambda) V^T == M.
    Matrix lam(n, n);
    for (std::size_t i = 0; i < n; ++i)
        lam(i, i) = e.values[i];
    const Matrix rebuilt =
        e.vectors.multiply(lam).multiply(e.vectors.transposed());
    EXPECT_LT(rebuilt.maxAbsDiff(m), 1e-8);

    // Trace is preserved.
    double trace = 0.0, sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        trace += m(i, i);
        sum += e.values[i];
    }
    EXPECT_NEAR(trace, sum, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenPropertyTest,
                         ::testing::Values(2, 3, 5, 8, 13, 21, 34, 69));

TEST(Covariance, KnownValues)
{
    // Two perfectly correlated columns.
    Matrix m = Matrix::fromRows({{1, 2}, {2, 4}, {3, 6}});
    const Matrix cov = mica::stats::covarianceMatrix(m);
    EXPECT_NEAR(cov(0, 0), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(cov(1, 1), 8.0 / 3.0, 1e-12);
    EXPECT_NEAR(cov(0, 1), 4.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(cov(0, 1), cov(1, 0));
}

TEST(Covariance, ZeroForConstantColumns)
{
    Matrix m = Matrix::fromRows({{5, 1}, {5, 2}, {5, 3}});
    const Matrix cov = mica::stats::covarianceMatrix(m);
    EXPECT_EQ(cov(0, 0), 0.0);
    EXPECT_EQ(cov(0, 1), 0.0);
}

TEST(Covariance, PositiveSemiDefinite)
{
    mica::stats::Rng rng(33);
    Matrix m(50, 6);
    for (std::size_t r = 0; r < 50; ++r)
        for (std::size_t c = 0; c < 6; ++c)
            m(r, c) = rng.nextGaussian();
    const auto e =
        mica::stats::jacobiEigenSymmetric(mica::stats::covarianceMatrix(m));
    for (double v : e.values)
        EXPECT_GE(v, -1e-10);
}

} // namespace
