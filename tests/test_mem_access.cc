/**
 * @file
 * Static memory-access analysis: induction-variable stride detection,
 * stride classification, footprints and loop-carried dependences.
 */

#include <gtest/gtest.h>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "analysis/mem_access.hh"
#include "analysis/value_range.hh"
#include "workloads/program_builder.hh"

namespace {

using namespace mica;
using analysis::buildCfg;
using analysis::Cfg;
using analysis::MemAccess;
using analysis::MemAccessAnalysis;
using analysis::StrideClass;
using isa::Opcode;
using workloads::Label;
using workloads::ProgramBuilder;

MemAccessAnalysis
analyze(const isa::Program &program)
{
    const Cfg cfg = buildCfg(program);
    const analysis::DominatorTree doms = analysis::computeDominators(cfg);
    const auto loops = analysis::findNaturalLoops(cfg, doms);
    const analysis::ValueRanges ranges = analysis::computeValueRanges(cfg);
    return analysis::analyzeMemAccess(cfg, loops, ranges);
}

const MemAccess *
accessAt(const MemAccessAnalysis &mem, std::size_t instr)
{
    for (const MemAccess &a : mem.accesses)
        if (a.instr == instr)
            return &a;
    return nullptr;
}

TEST(MemAccess, UnitStrideLoopWithInvariantBase)
{
    ProgramBuilder pb("unit");
    const std::uint64_t buf = pb.allocData(1024);
    pb.li(5, static_cast<std::int64_t>(buf));       // 0: induction pointer
    pb.li(6, static_cast<std::int64_t>(buf + 512)); // 1: loop bound
    Label top = pb.newLabel();
    pb.bind(top);
    pb.load(Opcode::Ld, 7, 5, 0);   // 2: unit-stride load
    pb.load(Opcode::Ld, 8, 6, 0);   // 3: loop-invariant load
    pb.alui(Opcode::Addi, 5, 5, 8); // 4: step
    pb.branch(Opcode::Bne, 5, 6, top);
    pb.halt();
    const MemAccessAnalysis mem = analyze(pb.build());

    ASSERT_EQ(mem.accesses.size(), 2u);
    const MemAccess *strided = accessAt(mem, 2);
    ASSERT_NE(strided, nullptr);
    EXPECT_EQ(strided->stride_class, StrideClass::Unit);
    EXPECT_TRUE(strided->stride_known);
    EXPECT_EQ(strided->stride, 8);
    EXPECT_EQ(strided->loop_depth, 1u);
    EXPECT_FALSE(strided->is_store);

    const MemAccess *invariant = accessAt(mem, 3);
    ASSERT_NE(invariant, nullptr);
    EXPECT_EQ(invariant->stride_class, StrideClass::Invariant);

    EXPECT_EQ(mem.stride_histogram[static_cast<std::size_t>(
                  StrideClass::Unit)],
              1u);
    EXPECT_EQ(mem.stride_histogram[static_cast<std::size_t>(
                  StrideClass::Invariant)],
              1u);
}

TEST(MemAccess, SmallAndLargeStrideClasses)
{
    ProgramBuilder pb("strides");
    const std::uint64_t buf = pb.allocData(8192);
    pb.li(5, static_cast<std::int64_t>(buf));
    pb.li(6, static_cast<std::int64_t>(buf));
    pb.li(9, 0);
    pb.li(10, 16);
    Label top = pb.newLabel();
    pb.bind(top);
    pb.load(Opcode::Ld, 7, 5, 0);     // stride 16: Small
    pb.load(Opcode::Ld, 8, 6, 0);     // stride 128: Large
    pb.alui(Opcode::Addi, 5, 5, 16);
    pb.alui(Opcode::Addi, 6, 6, 128);
    pb.alui(Opcode::Addi, 9, 9, 1);
    pb.branch(Opcode::Bne, 9, 10, top);
    pb.halt();
    const MemAccessAnalysis mem = analyze(pb.build());

    const MemAccess *small = accessAt(mem, 4);
    ASSERT_NE(small, nullptr);
    EXPECT_EQ(small->stride_class, StrideClass::Small);
    EXPECT_EQ(small->stride, 16);
    const MemAccess *large = accessAt(mem, 5);
    ASSERT_NE(large, nullptr);
    EXPECT_EQ(large->stride_class, StrideClass::Large);
    EXPECT_EQ(large->stride, 128);
}

TEST(MemAccess, DerivedInductionVariableGetsScaledStride)
{
    // x7 = x9 << 3 is a one-level derived induction variable: the basic
    // counter steps by 1, so the address advances 8 bytes per iteration.
    ProgramBuilder pb("derived");
    const std::uint64_t buf = pb.allocData(1024);
    pb.li(9, 0);
    pb.li(10, 100);
    Label top = pb.newLabel();
    pb.bind(top);
    pb.alui(Opcode::Slli, 7, 9, 3);
    pb.load(Opcode::Ld, 8, 7, static_cast<std::int64_t>(buf));
    pb.alui(Opcode::Addi, 9, 9, 1);
    pb.branch(Opcode::Bne, 9, 10, top);
    pb.halt();
    const MemAccessAnalysis mem = analyze(pb.build());

    const MemAccess *access = accessAt(mem, 3);
    ASSERT_NE(access, nullptr);
    EXPECT_TRUE(access->stride_known);
    EXPECT_EQ(access->stride, 8);
    EXPECT_EQ(access->stride_class, StrideClass::Unit);
}

TEST(MemAccess, SameIterationDependenceHasDistanceZero)
{
    ProgramBuilder pb("dist0");
    const std::uint64_t buf = pb.allocData(1024);
    pb.li(5, static_cast<std::int64_t>(buf));
    pb.li(6, static_cast<std::int64_t>(buf + 512));
    Label top = pb.newLabel();
    pb.bind(top);
    pb.load(Opcode::Ld, 7, 5, 0);   // 2
    pb.store(Opcode::Sd, 7, 5, 0);  // 3: same address, same iteration
    pb.alui(Opcode::Addi, 5, 5, 8);
    pb.branch(Opcode::Bne, 5, 6, top);
    pb.halt();
    const MemAccessAnalysis mem = analyze(pb.build());

    ASSERT_FALSE(mem.dependences.empty());
    bool found = false;
    for (const analysis::LoopDependence &dep : mem.dependences)
        if (dep.store_instr == 3 && dep.other_instr == 2 &&
            dep.distance_known && dep.distance == 0)
            found = true;
    EXPECT_TRUE(found);
    EXPECT_EQ(mem.loop_carried, 0u); // distance 0 is not loop-carried
}

TEST(MemAccess, LoopCarriedDependenceWithExactDistance)
{
    // The store writes 256 bytes ahead of the load through the same
    // 8-byte-step pointer: the load observes it 32 iterations later.
    ProgramBuilder pb("carried");
    const std::uint64_t buf = pb.allocData(4096);
    pb.li(5, static_cast<std::int64_t>(buf));
    pb.li(6, static_cast<std::int64_t>(buf + 1024));
    Label top = pb.newLabel();
    pb.bind(top);
    pb.load(Opcode::Ld, 7, 5, 0);    // 2
    pb.store(Opcode::Sd, 7, 5, 256); // 3
    pb.alui(Opcode::Addi, 5, 5, 8);
    pb.branch(Opcode::Bne, 5, 6, top);
    pb.halt();
    const MemAccessAnalysis mem = analyze(pb.build());

    bool found = false;
    for (const analysis::LoopDependence &dep : mem.dependences)
        if (dep.distance_known && dep.distance == 32)
            found = true;
    EXPECT_TRUE(found);
    EXPECT_GE(mem.loop_carried, 1u);
}

TEST(MemAccess, StraightLineAccessesAreOutsideLoops)
{
    ProgramBuilder pb("straight");
    const std::uint64_t buf = pb.allocData(64);
    pb.li(5, static_cast<std::int64_t>(buf));
    pb.load(Opcode::Ld, 6, 5, 0);
    pb.store(Opcode::Sd, 6, 5, 8);
    pb.halt();
    const MemAccessAnalysis mem = analyze(pb.build());

    ASSERT_EQ(mem.accesses.size(), 2u);
    for (const MemAccess &a : mem.accesses) {
        EXPECT_EQ(a.loop, MemAccess::kNoLoop);
        EXPECT_EQ(a.loop_depth, 0u);
        EXPECT_EQ(a.stride_class, StrideClass::Invariant);
        // Constant base + constant offset: an exact 8-byte footprint.
        EXPECT_EQ(a.footprint, 8u);
        EXPECT_TRUE(a.address.isConstant());
    }
    EXPECT_TRUE(mem.dependences.empty());
}

TEST(MemAccess, HistogramCoversEveryAccess)
{
    ProgramBuilder pb("histo");
    const std::uint64_t buf = pb.allocData(1024);
    pb.li(5, static_cast<std::int64_t>(buf));
    pb.li(6, static_cast<std::int64_t>(buf + 256));
    Label top = pb.newLabel();
    pb.bind(top);
    pb.load(Opcode::Ld, 7, 5, 0);
    pb.store(Opcode::Sd, 7, 5, 8);
    pb.alui(Opcode::Addi, 5, 5, 8);
    pb.branch(Opcode::Bne, 5, 6, top);
    pb.halt();
    const MemAccessAnalysis mem = analyze(pb.build());

    std::size_t total = 0;
    for (std::size_t c = 0; c < analysis::kNumStrideClasses; ++c)
        total += mem.stride_histogram[c];
    EXPECT_EQ(total, mem.accesses.size());
}

TEST(MemAccess, EmptyProgramHasNoAccesses)
{
    const isa::Program empty{};
    const Cfg cfg = buildCfg(empty);
    const analysis::DominatorTree doms = analysis::computeDominators(cfg);
    const auto loops = analysis::findNaturalLoops(cfg, doms);
    const analysis::ValueRanges ranges = analysis::computeValueRanges(cfg);
    const MemAccessAnalysis mem =
        analysis::analyzeMemAccess(cfg, loops, ranges);
    EXPECT_TRUE(mem.accesses.empty());
    EXPECT_TRUE(mem.dependences.empty());
}

} // namespace
