/**
 * @file
 * Unit tests for the graph-based approximate nearest-center index
 * (ann::CenterIndex): build determinism across thread counts, the exact
 * small-k fallback, the recall and bit-identity contracts of the beam
 * search, the lowest-index tie-break the exact scan mandates, and the
 * opt-in wiring through projectRows and KMeans::Options::ann.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "ann/center_index.hh"
#include "stats/distance.hh"
#include "stats/kmeans.hh"
#include "stats/projection.hh"
#include "stats/rng.hh"

namespace {

using mica::ann::BuildOptions;
using mica::ann::CenterIndex;
using mica::stats::DistanceCounters;
using mica::stats::Matrix;
using mica::stats::NearestCenter;
using mica::stats::Rng;

/** k gaussian centers in m dimensions, mildly separated. */
Matrix
gaussianCenters(std::size_t k, std::size_t m, std::uint64_t seed)
{
    Rng rng(seed);
    Matrix c(k, m);
    for (std::size_t i = 0; i < k; ++i)
        for (std::size_t j = 0; j < m; ++j)
            c(i, j) = 4.0 * rng.nextGaussian();
    return c;
}

/** Queries near the centers (the serving-realistic regime). */
Matrix
perturbedQueries(const Matrix &centers, std::size_t n, double noise,
                 std::uint64_t seed)
{
    Rng rng(seed);
    Matrix q(n, centers.cols());
    for (std::size_t i = 0; i < n; ++i) {
        const auto base = centers.row(i % centers.rows());
        for (std::size_t j = 0; j < centers.cols(); ++j)
            q(i, j) = base[j] + noise * rng.nextGaussian();
    }
    return q;
}

TEST(Ann, BuildIsDeterministicAcrossThreadCounts)
{
    const Matrix centers = gaussianCenters(1500, 8, 11);
    BuildOptions opts;
    opts.min_graph_size = 64;
    opts.threads = 1;
    const CenterIndex one = CenterIndex::build(centers.view(), opts);
    ASSERT_TRUE(one.graphMode());
    for (unsigned t : {2u, 4u}) {
        opts.threads = t;
        const CenterIndex many = CenterIndex::build(centers.view(), opts);
        ASSERT_EQ(many.degree(), one.degree());
        ASSERT_EQ(many.buildRounds(), one.buildRounds());
        EXPECT_EQ(many.lengthScale(), one.lengthScale());
        for (std::size_t i = 0; i < centers.rows(); ++i) {
            const auto a = one.neighbors(i);
            const auto b = many.neighbors(i);
            ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin()))
                << "adjacency differs at node " << i << " with " << t
                << " threads";
        }
    }
}

TEST(Ann, SmallKFallsBackToExactScan)
{
    const Matrix centers = gaussianCenters(100, 6, 3);
    const CenterIndex idx = CenterIndex::build(centers.view()); // default
    EXPECT_FALSE(idx.graphMode());
    EXPECT_EQ(idx.lengthScale(), 0.0);

    const Matrix queries = perturbedQueries(centers, 200, 1.0, 5);
    for (std::size_t i = 0; i < queries.rows(); ++i) {
        const NearestCenter exact =
            mica::stats::nearestCenter(queries.row(i), centers);
        DistanceCounters counters;
        const NearestCenter approx = idx.find(queries.row(i), &counters);
        EXPECT_EQ(approx.index, exact.index);
        EXPECT_EQ(std::memcmp(&approx.dist2, &exact.dist2,
                              sizeof(double)), 0);
        EXPECT_EQ(counters.computed, centers.rows());
        EXPECT_EQ(counters.pruned, 0u);
    }
}

TEST(Ann, GraphSearchRecallAndBitIdentityOnHits)
{
    const Matrix centers = gaussianCenters(2048, 12, 17);
    BuildOptions opts;
    opts.min_graph_size = 64;
    const CenterIndex idx = CenterIndex::build(centers.view(), opts);
    ASSERT_TRUE(idx.graphMode());
    EXPECT_GT(idx.lengthScale(), 0.0);

    const Matrix queries = perturbedQueries(centers, 512, 0.05, 19);
    std::size_t hits = 0;
    DistanceCounters counters;
    for (std::size_t i = 0; i < queries.rows(); ++i) {
        const NearestCenter exact =
            mica::stats::nearestCenter(queries.row(i), centers);
        const NearestCenter approx = idx.find(queries.row(i), &counters);
        if (approx.index == exact.index) {
            ++hits;
            // Contract: a hit is bitwise-equal to the exact scan.
            EXPECT_EQ(std::memcmp(&approx.dist2, &exact.dist2,
                                  sizeof(double)), 0);
        } else {
            // A miss still returns an exact distance to a real center,
            // so it can never beat the true nearest.
            EXPECT_GE(approx.dist2, exact.dist2);
        }
    }
    // Serving-realistic queries: the recall floor CI gates on the bench
    // is 0.999; this fixed-seed fixture must clear it.
    EXPECT_GE(static_cast<double>(hits),
              0.999 * static_cast<double>(queries.rows()));
    // Sublinearity: far fewer evaluations than 512 exact scans.
    EXPECT_LT(counters.computed, queries.rows() * centers.rows() / 4);
    EXPECT_EQ(counters.computed + counters.pruned,
              queries.rows() * centers.rows());
}

TEST(Ann, SearchIsDeterministicAndBeamClamps)
{
    const Matrix centers = gaussianCenters(1200, 10, 23);
    BuildOptions opts;
    opts.min_graph_size = 64;
    const CenterIndex idx = CenterIndex::build(centers.view(), opts);
    const Matrix queries = perturbedQueries(centers, 64, 0.2, 29);
    for (std::size_t i = 0; i < queries.rows(); ++i) {
        const NearestCenter a = idx.find(queries.row(i));
        const NearestCenter b = idx.find(queries.row(i));
        EXPECT_EQ(a.index, b.index);
        EXPECT_EQ(std::memcmp(&a.dist2, &b.dist2, sizeof(double)), 0);
        // A beam wider than k degenerates to an exhaustive traversal of
        // the reachable component — still a valid (exact-or-better)
        // answer, and the clamp must not crash.
        const NearestCenter wide =
            idx.search(queries.row(i), centers.rows() * 2);
        EXPECT_LE(wide.dist2, a.dist2);
    }
}

TEST(Ann, DuplicateCentersTieBreakToLowestIndex)
{
    // Pairs of exactly identical centers: whichever duplicate the search
    // reaches, the (distance, index) ordering must surface the lower
    // index — the same contract as the exact scan's strict-< loop.
    const std::size_t pairs = 600;
    Matrix centers(2 * pairs, 4);
    Rng rng(31);
    for (std::size_t p = 0; p < pairs; ++p) {
        for (std::size_t j = 0; j < 4; ++j) {
            const double v = 3.0 * rng.nextGaussian();
            centers(2 * p, j) = v;
            centers(2 * p + 1, j) = v;
        }
    }
    BuildOptions opts;
    opts.min_graph_size = 64;
    const CenterIndex idx = CenterIndex::build(centers.view(), opts);
    ASSERT_TRUE(idx.graphMode());

    const Matrix queries = perturbedQueries(centers, 256, 0.01, 37);
    for (std::size_t i = 0; i < queries.rows(); ++i) {
        const NearestCenter exact =
            mica::stats::nearestCenter(queries.row(i), centers);
        // The exact scan must pick the even (lower) member of the pair.
        EXPECT_EQ(exact.index % 2, 0u);
        const NearestCenter approx = idx.find(queries.row(i));
        // Whatever center the search settled on, it must have reported
        // the lowest index among the duplicates at that distance.
        EXPECT_EQ(approx.index % 2, 0u)
            << "ann returned the higher-index duplicate at query " << i;
    }
}

TEST(Ann, FinderThroughProjectRowsMatchesDirectSearch)
{
    const std::size_t m = 6;
    const Matrix centers = gaussianCenters(1400, m, 41);
    BuildOptions opts;
    opts.min_graph_size = 64;
    const CenterIndex idx = CenterIndex::build(centers.view(), opts);

    // Identity projection spec: rows are already in center space.
    Matrix loadings(m, m);
    std::vector<double> rescale(m, 1.0);
    for (std::size_t j = 0; j < m; ++j)
        loadings(j, j) = 1.0;
    mica::stats::ProjectionSpec spec;
    spec.normalize_input = false;
    spec.loadings = loadings.view();
    spec.rescale_sd = rescale;
    spec.centers = centers.view();

    const Matrix queries = perturbedQueries(centers, 300, 0.1, 43);

    mica::stats::ProjectOptions popts;
    popts.finder = &idx;
    const auto via_finder =
        mica::stats::projectRows(spec, queries.view(), popts);

    // The finder hook must be exactly find() per row; and finder=nullptr
    // must stay the exact scan.
    const auto exact_path =
        mica::stats::projectRows(spec, queries.view(), {});
    for (std::size_t i = 0; i < queries.rows(); ++i) {
        const NearestCenter direct = idx.find(queries.row(i));
        EXPECT_EQ(via_finder.assignment[i], direct.index);
        EXPECT_EQ(std::memcmp(&via_finder.dist2[i], &direct.dist2,
                              sizeof(double)), 0);
        const NearestCenter scan =
            mica::stats::nearestCenter(queries.row(i), centers);
        EXPECT_EQ(exact_path.assignment[i], scan.index);
        EXPECT_EQ(std::memcmp(&exact_path.dist2[i], &scan.dist2,
                              sizeof(double)), 0);
    }
    // Thread-count invariance holds through the finder too (per-thread
    // search scratch, per-row independence).
    mica::stats::ProjectOptions popts4 = popts;
    popts4.threads = 4;
    popts4.block_rows = 37;
    const auto via_finder4 =
        mica::stats::projectRows(spec, queries.view(), popts4);
    EXPECT_EQ(via_finder4.assignment, via_finder.assignment);
    EXPECT_EQ(std::memcmp(via_finder4.dist2.data(),
                          via_finder.dist2.data(),
                          via_finder.dist2.size() * sizeof(double)), 0);
}

TEST(Ann, KMeansAnnOptionIsDeterministicAndOffByDefault)
{
    // 24 well-separated blobs; enough rows that Lloyd does real work.
    Rng rng(47);
    const std::size_t true_k = 24, per = 40, dim = 6;
    Matrix data(true_k * per, dim);
    for (std::size_t c = 0; c < true_k; ++c)
        for (std::size_t i = 0; i < per; ++i)
            for (std::size_t j = 0; j < dim; ++j)
                data(c * per + i, j) =
                    10.0 * static_cast<double>((c * (j + 1)) % 7) +
                    0.05 * rng.nextGaussian();

    mica::stats::KMeans::Options base;
    base.k = true_k;
    base.seed = 5;
    base.max_iterations = 50;

    // Default: Options::ann is null and the exact path is untouched.
    ASSERT_EQ(base.ann, nullptr);
    const auto exact = mica::stats::KMeans::run(data, base);

    mica::ann::BuildOptions bopts;
    bopts.min_graph_size = 1; // force the graph path at this tiny k
    auto with_ann = base;
    with_ann.ann = mica::ann::indexFactory(bopts);

    const auto approx1 = mica::stats::KMeans::run(data, with_ann);
    // Thread-count invariance of the approximate path.
    with_ann.threads = 4;
    const auto approx4 = mica::stats::KMeans::run(data, with_ann);
    EXPECT_EQ(approx1.assignment, approx4.assignment);
    EXPECT_EQ(std::memcmp(approx1.centers.data().data(),
                          approx4.centers.data().data(),
                          approx1.centers.data().size() * sizeof(double)),
              0);
    EXPECT_EQ(approx1.inertia, approx4.inertia);

    // Quality: on well-separated blobs the approximate assignment must
    // land the same clustering (inertia within a whisker of exact).
    EXPECT_LE(approx1.inertia, exact.inertia * 1.05 + 1e-9);
}

TEST(Ann, GenerationTagRoundTrips)
{
    const Matrix centers = gaussianCenters(64, 4, 53);
    CenterIndex idx = CenterIndex::build(centers.view());
    EXPECT_EQ(idx.generation(), 0u);
    idx.setGeneration(17);
    EXPECT_EQ(idx.generation(), 17u);
    EXPECT_EQ(idx.centers().data(), centers.view().data());
}

} // namespace
