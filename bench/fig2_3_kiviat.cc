/**
 * @file
 * Figures 2-3: kiviat plots of the prominent phase behaviours along the
 * GA-selected key characteristics, with per-cluster benchmark pie charts,
 * organized into benchmark-specific / suite-specific / mixed groups as in
 * the paper. Emits one SVG grid per group plus an ASCII rendering of the
 * heaviest phases.
 */

#include <cstdio>
#include <map>

#include "bench/bench_util.hh"
#include "viz/kiviat.hh"

int
main()
{
    using mica::core::ClusterKind;

    const auto out = micabench::runExperiment();

    std::fprintf(stderr, "selecting key characteristics...\n");
    const auto keys = mica::core::selectKeyCharacteristics(out, 12);
    const auto axes = mica::core::kiviatAxes(out, keys.selected);

    std::printf("Figures 2-3: %zu prominent phases (coverage %.1f%%), "
                "kiviat axes = 12 key characteristics "
                "(GA correlation %.3f)\n\n",
                out.analysis.num_prominent,
                out.analysis.prominentCoverage() * 100.0, keys.fitness);

    // Group the prominent clusters as in the paper's figure layout.
    std::map<ClusterKind, std::vector<mica::viz::KiviatPanel>> groups;
    std::map<ClusterKind, int> counts;
    for (std::size_t i = 0; i < out.analysis.num_prominent; ++i) {
        const auto &cluster = out.analysis.clusters[i];
        groups[cluster.kind].push_back(
            mica::core::kiviatPanelFor(out, cluster, keys.selected));
        ++counts[cluster.kind];
    }

    const std::string dir = micabench::outputDir();
    const struct
    {
        ClusterKind kind;
        const char *file;
        const char *title;
    } parts[] = {
        {ClusterKind::BenchmarkSpecific, "fig2_benchmark_specific.svg",
         "benchmark-specific clusters"},
        {ClusterKind::SuiteSpecific, "fig3_suite_specific.svg",
         "suite-specific clusters"},
        {ClusterKind::Mixed, "fig3_mixed.svg", "mixed clusters"},
    };
    for (const auto &part : parts) {
        const auto &panels = groups[part.kind];
        std::printf("%-28s %3d prominent clusters\n", part.title,
                    counts[part.kind]);
        if (panels.empty())
            continue;
        const auto doc =
            mica::viz::renderKiviatGrid(part.title, panels, axes, {});
        const std::string path = dir + "/" + part.file;
        doc.writeFile(path);
        std::printf("  wrote %s (%zu panels)\n", path.c_str(),
                    panels.size());
    }

    // ASCII rendering of the three heaviest phases for the terminal.
    std::printf("\nheaviest prominent phases:\n\n");
    for (std::size_t i = 0; i < 3 && i < out.analysis.num_prominent; ++i) {
        const auto &cluster = out.analysis.clusters[i];
        const auto panel =
            mica::core::kiviatPanelFor(out, cluster, keys.selected);
        std::printf("[%s]\n%s\n",
                    std::string(
                        mica::core::clusterKindName(cluster.kind))
                        .c_str(),
                    mica::viz::renderAsciiKiviat(panel, axes).c_str());
    }
    return 0;
}
