/**
 * @file
 * Ablation: the coverage-vs-variability trade-off in choosing k (paper
 * section 3.6). Clustering with exactly k = num_prominent gives 100%
 * coverage but high within-cluster variability; clustering with k >
 * num_prominent lowers the variability each prominent phase represents at
 * the cost of coverage. The paper picks k = 300 / top-100.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "viz/charts.hh"

int
main()
{
    using namespace mica;

    const auto out = micabench::runExperiment();
    const auto base = out.config;

    std::printf("Ablation: k-means k vs top-%zu coverage and "
                "within-cluster variability\n\n",
                base.num_prominent);
    std::printf("  %-6s %14s %22s %12s\n", "k", "coverage",
                "mean within-cluster var", "BIC");

    std::vector<std::vector<std::string>> rows;
    const std::size_t candidates[] = {
        base.num_prominent, base.num_prominent * 2, base.kmeans_k,
        base.kmeans_k + base.kmeans_k / 3};
    for (std::size_t k : candidates) {
        core::ExperimentConfig cfg = base;
        cfg.kmeans_k = k;
        std::fprintf(stderr, "clustering with k=%zu...\n", k);
        const auto analysis =
            core::analyzePhases(out.sampled, out.characterization, cfg);
        const double coverage = analysis.prominentCoverage();
        const double variance = analysis.clustering.meanVariance(
            out.sampled.data.rows());
        std::printf("  %-6zu %13.1f%% %22.4f %12.0f\n", k,
                    coverage * 100.0, variance, analysis.clustering.bic);
        rows.push_back({std::to_string(k), std::to_string(coverage),
                        std::to_string(variance),
                        std::to_string(analysis.clustering.bic)});
    }

    std::printf("\nk == num_prominent gives 100%% coverage by "
                "construction; larger k trades coverage for tighter "
                "(more homogeneous) prominent phases.\n");

    const std::string csv =
        micabench::outputDir() + "/ablation_k_tradeoff.csv";
    mica::viz::writeCsv(
        csv, {"k", "prominent_coverage", "mean_variance", "bic"}, rows);
    std::printf("wrote %s\n", csv.c_str());
    return 0;
}
