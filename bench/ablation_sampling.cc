/**
 * @file
 * Ablation: interval sampling on/off (paper section 3.4).
 *
 * The methodology samples a fixed number of intervals per benchmark so
 * every benchmark weighs equally. Without sampling, long benchmarks
 * dominate the clustering and the suite comparison tilts toward whoever
 * has the largest dynamic instruction counts. This binary quantifies the
 * difference.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "viz/charts.hh"

int
main()
{
    using namespace mica;

    const auto cfg = micabench::experimentConfig();
    const auto out = micabench::runExperiment(); // sampled variant (cached)

    // Unsampled variant: every interval once.
    std::fprintf(stderr, "clustering the unsampled data set...\n");
    const auto unsampled = core::allIntervals(out.characterization);
    core::ExperimentConfig raw_cfg = cfg;
    raw_cfg.kmeans_k = cfg.kmeans_k;
    const auto raw_analysis =
        core::analyzePhases(unsampled, out.characterization, raw_cfg);
    const auto raw_cmp = core::compareSuites(out.characterization,
                                             unsampled, raw_analysis);

    std::printf("Ablation: interval sampling (equal benchmark weight) vs "
                "raw intervals\n\n");
    std::printf("  %-14s %16s %16s %14s %14s\n", "suite",
                "coverage(sampled)", "coverage(raw)", "unique(sampled)",
                "unique(raw)");
    std::vector<std::vector<std::string>> rows;
    for (std::size_t s = 0; s < out.comparison.suites.size(); ++s) {
        const auto &suite = out.comparison.suites[s];
        const std::size_t raw_idx = raw_cmp.indexOf(suite);
        std::printf("  %-14s %16zu %16zu %13.1f%% %13.1f%%\n",
                    suite.c_str(), out.comparison.coverage[s],
                    raw_cmp.coverage[raw_idx],
                    out.comparison.uniqueness[s] * 100.0,
                    raw_cmp.uniqueness[raw_idx] * 100.0);
        rows.push_back({suite,
                        std::to_string(out.comparison.coverage[s]),
                        std::to_string(raw_cmp.coverage[raw_idx]),
                        std::to_string(out.comparison.uniqueness[s]),
                        std::to_string(raw_cmp.uniqueness[raw_idx])});
    }

    // Quantify the weight distortion sampling removes: the share of the
    // data set owned by the largest benchmark.
    const auto counts = out.characterization.intervalsPerBenchmark();
    std::uint32_t max_count = 0, total = 0;
    std::size_t biggest = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
        total += counts[b];
        if (counts[b] > max_count) {
            max_count = counts[b];
            biggest = b;
        }
    }
    std::printf("\nwithout sampling, %s alone owns %.1f%% of all "
                "intervals; with sampling every benchmark owns %.2f%%\n",
                out.characterization.benchmark_ids[biggest].c_str(),
                100.0 * max_count / total,
                100.0 / static_cast<double>(counts.size()));

    const std::string csv =
        micabench::outputDir() + "/ablation_sampling.csv";
    mica::viz::writeCsv(csv,
                        {"suite", "coverage_sampled", "coverage_raw",
                         "unique_sampled", "unique_raw"},
                        rows);
    std::printf("wrote %s\n", csv.c_str());
    return 0;
}
