/**
 * @file
 * Table 3: the benchmarks, grouped per suite, with their (scaled-down)
 * instruction-interval counts under the default experiment configuration.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace mica;

    const workloads::SuiteCatalog catalog;
    const auto cfg = micabench::experimentConfig();

    std::printf("Table 3: benchmarks and %llu%s-instruction interval "
                "counts (paper Table 3 scaled ~40x down)\n\n",
                static_cast<unsigned long long>(
                    cfg.interval_instructions / 1000),
                "K");

    std::size_t total_benchmarks = 0;
    std::uint64_t total_intervals = 0;
    for (const std::string &suite : workloads::SuiteCatalog::suiteNames()) {
        std::printf("%s\n", suite.c_str());
        std::uint64_t suite_intervals = 0;
        for (const auto *bench : catalog.bySuite(suite)) {
            const auto scaled = static_cast<std::uint64_t>(
                bench->total_intervals * cfg.interval_scale);
            std::printf("  %-14s inputs=%u  intervals=%llu\n",
                        bench->name.c_str(), bench->num_inputs,
                        static_cast<unsigned long long>(scaled));
            suite_intervals += scaled;
            ++total_benchmarks;
        }
        std::printf("  %-14s            intervals=%llu\n\n", "(suite)",
                    static_cast<unsigned long long>(suite_intervals));
        total_intervals += suite_intervals;
    }
    std::printf("total: %zu benchmarks, ~%llu intervals, ~%.1fB dynamic "
                "instructions\n",
                total_benchmarks,
                static_cast<unsigned long long>(total_intervals),
                static_cast<double>(total_intervals) *
                    static_cast<double>(cfg.interval_instructions) / 1e9);
    return 0;
}
