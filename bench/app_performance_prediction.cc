/**
 * @file
 * Application benchmark: performance prediction from inherent program
 * similarity (Hoste, Phansalkar, Eeckhout et al., PACT 2006 — the
 * companion application of the paper's workload space, cited in its
 * related work).
 *
 * Method: measure each benchmark's "real" performance (CPI on the
 * concrete TimingModel machine), place all benchmarks in the
 * microarchitecture-independent rescaled PCA space, and predict each
 * benchmark's CPI leave-one-out as the distance-weighted average of its
 * k nearest neighbours. If the workload space captures what matters, the
 * prediction error is far below a naive global-mean predictor.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_util.hh"
#include "stats/pca.hh"
#include "viz/charts.hh"
#include "vm/cpu.hh"
#include "vm/timing.hh"

namespace {

using namespace mica;

double
measureCpi(const workloads::BenchmarkSpec &bench, std::uint64_t budget)
{
    vm::Cpu cpu(bench.build(0));
    vm::TimingModel timing;
    (void)cpu.run(budget, &timing);
    return timing.stats().cpi();
}

} // namespace

int
main()
{
    const auto out = micabench::runExperiment();
    const auto &chars = out.characterization;
    const workloads::SuiteCatalog catalog;
    const std::size_t n = chars.benchmark_ids.size();

    // Ground truth: CPI of every benchmark on the reference machine.
    std::fprintf(stderr, "measuring reference-machine CPI for %zu "
                         "benchmarks...\n", n);
    std::vector<double> cpi(n);
    for (std::size_t b = 0; b < n; ++b)
        cpi[b] = measureCpi(catalog.benchmarks()[b],
                            micabench::fastMode() ? 200000 : 1000000);

    // Aggregate microarchitecture-independent vectors -> PCA space.
    stats::Matrix means(n, metrics::kNumCharacteristics);
    std::vector<std::size_t> counts(n, 0);
    for (const auto &rec : chars.intervals) {
        auto row = means.row(rec.benchmark);
        for (std::size_t c = 0; c < metrics::kNumCharacteristics; ++c)
            row[c] += rec.values[c];
        ++counts[rec.benchmark];
    }
    for (std::size_t b = 0; b < n; ++b) {
        auto row = means.row(b);
        for (std::size_t c = 0; c < metrics::kNumCharacteristics; ++c)
            row[c] /= static_cast<double>(counts[b]);
    }
    const stats::Matrix space = stats::rescaledPcaSpace(means);

    // Leave-one-out k-NN prediction (k = 3, inverse-distance weights).
    const std::size_t k = 3;
    double knn_abs_err = 0.0, naive_abs_err = 0.0;
    double global_mean = 0.0;
    for (double c : cpi)
        global_mean += c / static_cast<double>(n);

    std::printf("leave-one-out CPI prediction (k=%zu nearest neighbours "
                "in the workload space):\n\n", k);
    std::printf("  %-24s %8s %10s %10s\n", "benchmark", "true",
                "predicted", "neighbour");
    std::vector<std::vector<std::string>> rows;
    for (std::size_t b = 0; b < n; ++b) {
        std::vector<std::pair<double, std::size_t>> neighbours;
        for (std::size_t o = 0; o < n; ++o) {
            if (o == b)
                continue;
            neighbours.emplace_back(
                stats::euclideanDistance(space.row(b), space.row(o)), o);
        }
        std::partial_sort(neighbours.begin(), neighbours.begin() + k,
                          neighbours.end());
        double weight_sum = 0.0, prediction = 0.0;
        for (std::size_t i = 0; i < k; ++i) {
            const double w = 1.0 / (neighbours[i].first + 1e-6);
            prediction += w * cpi[neighbours[i].second];
            weight_sum += w;
        }
        prediction /= weight_sum;

        knn_abs_err += std::fabs(prediction - cpi[b]) / cpi[b];
        naive_abs_err += std::fabs(global_mean - cpi[b]) / cpi[b];
        if (b % 11 == 0) // print a readable subset
            std::printf("  %-24s %8.2f %10.2f %10s\n",
                        chars.benchmark_ids[b].c_str(), cpi[b], prediction,
                        chars.benchmark_ids[neighbours[0].second].c_str());
        rows.push_back({chars.benchmark_ids[b], std::to_string(cpi[b]),
                        std::to_string(prediction)});
    }
    knn_abs_err /= static_cast<double>(n);
    naive_abs_err /= static_cast<double>(n);

    std::printf("\nmean relative CPI error: k-NN in workload space "
                "%.1f%%  vs  global-mean baseline %.1f%%\n",
                knn_abs_err * 100.0, naive_abs_err * 100.0);
    std::printf("=> the microarchitecture-independent space is "
                "performance-relevant: behavioural neighbours predict "
                "machine-dependent CPI %.1fx better than the naive "
                "baseline.\n",
                naive_abs_err / std::max(knn_abs_err, 1e-9));

    const std::string csv =
        micabench::outputDir() + "/app_performance_prediction.csv";
    mica::viz::writeCsv(csv, {"benchmark", "true_cpi", "predicted_cpi"},
                        rows);
    std::printf("wrote %s\n", csv.c_str());
    return 0;
}
