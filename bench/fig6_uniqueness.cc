/**
 * @file
 * Figure 6: the fraction of each benchmark suite that represents unique
 * program behaviour not observed in any other suite (intervals living in
 * clusters populated exclusively by that suite).
 *
 * Paper shape to reproduce: BioPerf is by far the most unique (~65%),
 * SPECfp > SPECint within each CPU generation, and BMW / MediaBench II
 * are the least unique.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "viz/charts.hh"
#include "viz/figure_charts.hh"

int
main()
{
    const auto out = micabench::runExperiment();
    const auto &cmp = out.comparison;

    std::vector<mica::viz::Bar> bars;
    std::vector<std::vector<std::string>> rows;
    for (std::size_t s = 0; s < cmp.suites.size(); ++s) {
        bars.push_back({cmp.suites[s], cmp.uniqueness[s]});
        rows.push_back({cmp.suites[s],
                        std::to_string(cmp.uniqueness[s])});
    }

    std::printf("%s\n",
                mica::viz::asciiBarChart(
                    "Figure 6: fraction of unique behavior per suite",
                    bars, 50, /*percent=*/true)
                    .c_str());

    const std::string csv =
        micabench::outputDir() + "/fig6_uniqueness.csv";
    mica::viz::writeCsv(csv, {"suite", "unique_fraction"}, rows);
    mica::viz::ChartOptions svg_opts;
    svg_opts.percent = true;
    const std::string svg =
        micabench::outputDir() + "/fig6_uniqueness.svg";
    mica::viz::renderBarChartSvg("Figure 6: unique behavior per suite",
                                 bars, svg_opts)
        .writeFile(svg);
    std::printf("wrote %s and %s\n", csv.c_str(), svg.c_str());
    return 0;
}
