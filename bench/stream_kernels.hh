/**
 * @file
 * STREAM-style bandwidth kernels for the perf substrate's roofline-style
 * working-set sweep (docs/PERFORMANCE.md "SIMD kernels").
 *
 * The four classic operations — Copy, Scale, Add, Triad — are measured
 * over three cache-line-aligned double arrays whose combined footprint is
 * swept from L1-resident to DRAM-resident. Each operation's effective
 * bytes per element follows the STREAM convention (load + store counts,
 * no write-allocate accounting):
 *
 *   Copy   c[i] = a[i]            2 x 8  = 16 bytes/element
 *   Scale  b[i] = s * c[i]        2 x 8  = 16 bytes/element
 *   Add    c[i] = a[i] + b[i]     3 x 8  = 24 bytes/element
 *   Triad  a[i] = b[i] + s * c[i] 3 x 8  = 24 bytes/element
 *
 * The loops are deliberately plain: the compiler is free to vectorize
 * them (Release builds do), because the quantity of interest is the
 * memory system's sustainable bandwidth at each working-set size — the
 * ceiling the dispatched stats kernels (stats/simd.hh) run under — not
 * the instruction selection itself.
 */

#ifndef MICAPHASE_BENCH_STREAM_KERNELS_HH
#define MICAPHASE_BENCH_STREAM_KERNELS_HH

#include <chrono>
#include <cstddef>

#include "util/aligned.hh"

namespace micabench::stream {

enum class Op { Copy, Scale, Add, Triad };

inline const char *
opName(Op op)
{
    switch (op) {
    case Op::Copy:
        return "copy";
    case Op::Scale:
        return "scale";
    case Op::Add:
        return "add";
    case Op::Triad:
        return "triad";
    }
    return "copy";
}

/** STREAM-convention bytes moved per element for one op execution. */
inline double
bytesPerElement(Op op)
{
    switch (op) {
    case Op::Copy:
    case Op::Scale:
        return 16.0;
    case Op::Add:
    case Op::Triad:
        return 24.0;
    }
    return 16.0;
}

/** One pass of `op` over n-element arrays a/b/c with scalar s. */
inline void
runOp(Op op, double *a, double *b, double *c, std::size_t n, double s)
{
    switch (op) {
    case Op::Copy:
        for (std::size_t i = 0; i < n; ++i)
            c[i] = a[i];
        break;
    case Op::Scale:
        for (std::size_t i = 0; i < n; ++i)
            b[i] = s * c[i];
        break;
    case Op::Add:
        for (std::size_t i = 0; i < n; ++i)
            c[i] = a[i] + b[i];
        break;
    case Op::Triad:
        for (std::size_t i = 0; i < n; ++i)
            a[i] = b[i] + s * c[i];
        break;
    }
}

/** Bandwidth of all four ops at one working-set size. */
struct BandwidthPoint
{
    std::size_t working_set_bytes = 0; ///< combined footprint of a+b+c
    double copy_gbps = 0.0;
    double scale_gbps = 0.0;
    double add_gbps = 0.0;
    double triad_gbps = 0.0;

    double &
    slot(Op op)
    {
        switch (op) {
        case Op::Copy:
            return copy_gbps;
        case Op::Scale:
            return scale_gbps;
        case Op::Add:
            return add_gbps;
        case Op::Triad:
            return triad_gbps;
        }
        return copy_gbps;
    }
};

/**
 * Measure sustainable bandwidth at one combined working-set size
 * (split evenly across the three arrays). Each op runs `reps` passes
 * per timed sample, best of `samples` samples; a checksum of the
 * written array defeats dead-store elimination.
 */
inline BandwidthPoint
measureBandwidth(std::size_t working_set_bytes, int samples = 3)
{
    BandwidthPoint point;
    point.working_set_bytes = working_set_bytes;
    const std::size_t n = working_set_bytes / (3 * sizeof(double));
    if (n == 0)
        return point;

    mica::util::AlignedVector<double> a(n, 1.0), b(n, 2.0), c(n, 0.5);
    // Enough passes per sample that the timer resolution is negligible
    // even for L1-resident sizes (~64 MiB traffic per sample).
    const std::size_t reps =
        std::max<std::size_t>(1, (64ul << 20) / working_set_bytes);

    volatile double sink = 0.0;
    for (const Op op : {Op::Copy, Op::Scale, Op::Add, Op::Triad}) {
        double best_s = 1e300;
        for (int sample = 0; sample < samples; ++sample) {
            const auto t0 = std::chrono::steady_clock::now();
            for (std::size_t rep = 0; rep < reps; ++rep)
                runOp(op, a.data(), b.data(), c.data(), n, 3.0);
            const double dt = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count() /
                static_cast<double>(reps);
            best_s = std::min(best_s, dt);
        }
        sink = sink + a[n / 2] + b[n / 2] + c[n / 2];
        point.slot(op) = bytesPerElement(op) * static_cast<double>(n) /
            best_s / 1e9;
    }
    (void)sink;
    return point;
}

} // namespace micabench::stream

#endif // MICAPHASE_BENCH_STREAM_KERNELS_HH
