/**
 * @file
 * Ablation: aggregate vs phase-level characterization (paper section 2.1).
 *
 * Reproduces the paper's motivating example: a program whose first half
 * executes ~0% memory instructions and whose second half executes ~50%
 * looks, under aggregate characterization, like a uniform "25% memory"
 * workload — misleading for sizing load/store resources. The phase-level
 * view recovers the two regimes.
 */

#include <cstdio>

#include "mica/profiler.hh"
#include "vm/cpu.hh"
#include "workloads/program_builder.hh"

int
main()
{
    using namespace mica;
    namespace m = metrics::midx;
    using workloads::Label;
    using workloads::ProgramBuilder;

    // Phase A: pure ALU. Phase B: ld/sd-saturated (2 of 4 instructions).
    ProgramBuilder pb("two_phase");
    const auto buf = pb.allocData(4096);
    Label phase_a = pb.newLabel();
    pb.bind(phase_a);
    pb.li(6, 100000 / 4);
    Label a_loop = pb.newLabel();
    pb.bind(a_loop);
    pb.alu(isa::Opcode::Add, 5, 5, 7);
    pb.alu(isa::Opcode::Xor, 7, 7, 5);
    pb.alui(isa::Opcode::Addi, 6, 6, -1);
    pb.branch(isa::Opcode::Bne, 6, isa::kRegZero, a_loop);
    // Phase B.
    pb.li(8, static_cast<std::int64_t>(buf));
    pb.li(6, 100000 / 4);
    Label b_loop = pb.newLabel();
    pb.bind(b_loop);
    pb.load(isa::Opcode::Ld, 9, 8, 0);
    pb.store(isa::Opcode::Sd, 9, 8, 8);
    pb.alui(isa::Opcode::Addi, 6, 6, -1);
    pb.branch(isa::Opcode::Bne, 6, isa::kRegZero, b_loop);
    pb.jump(phase_a);

    // Aggregate view: one interval spanning the whole execution.
    vm::Cpu cpu(pb.build());
    profiler::MicaProfiler aggregate(200000);
    (void)cpu.run(200000, &aggregate);
    const auto &agg = aggregate.intervals().at(0);

    // Phase-level view: 20K-instruction intervals.
    cpu.reset();
    profiler::MicaProfiler phased(20000);
    (void)cpu.run(200000, &phased);

    std::printf("Ablation: aggregate vs phase-level characterization\n\n");
    std::printf("aggregate over the whole run:\n");
    std::printf("  memory instructions: %.1f%%  (reads %.1f%%, writes "
                "%.1f%%)\n\n",
                (agg[m::MixMemRead] + agg[m::MixMemWrite]) * 100.0,
                agg[m::MixMemRead] * 100.0, agg[m::MixMemWrite] * 100.0);

    std::printf("per 20K-instruction interval:\n");
    double min_mem = 1.0, max_mem = 0.0;
    for (std::size_t i = 0; i < phased.intervals().size(); ++i) {
        const auto &v = phased.intervals()[i];
        const double mem = v[m::MixMemRead] + v[m::MixMemWrite];
        min_mem = std::min(min_mem, mem);
        max_mem = std::max(max_mem, mem);
        std::printf("  interval %2zu: memory %.1f%%\n", i, mem * 100.0);
    }
    std::printf("\nthe aggregate (%.1f%%) is a value NO interval actually "
                "exhibits: intervals range from %.1f%% to %.1f%%.\n"
                "Sizing one third of the pipeline for memory based on the "
                "aggregate would under-provision half the execution — the "
                "paper's argument for phase-level characterization.\n",
                (agg[m::MixMemRead] + agg[m::MixMemWrite]) * 100.0,
                min_mem * 100.0, max_mem * 100.0);
    return 0;
}
