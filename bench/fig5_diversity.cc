/**
 * @file
 * Figure 5: cumulative coverage per suite as a function of the number of
 * clusters — the diversity measure. The lower a suite's curve, the more
 * clusters it takes to cover it, i.e. the more diverse it is.
 *
 * Paper shape to reproduce: domain-specific suites saturate with few
 * clusters; SPEC CPU2006 needs the most.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "viz/charts.hh"
#include "viz/figure_charts.hh"

int
main()
{
    const auto out = micabench::runExperiment();
    const auto &cmp = out.comparison;

    // Plot the first 60 clusters: the interesting region (the paper's
    // x-axis also concentrates there).
    std::vector<mica::viz::Series> series;
    for (std::size_t s = 0; s < cmp.suites.size(); ++s) {
        mica::viz::Series ser;
        ser.name = cmp.suites[s];
        const auto &curve = cmp.cumulative[s];
        for (std::size_t i = 0; i < curve.size() && i < 60; ++i)
            ser.values.push_back(curve[i]);
        series.push_back(ser);
    }
    std::printf("%s\n",
                mica::viz::asciiCurves(
                    "Figure 5: cumulative coverage vs number of clusters",
                    series)
                    .c_str());

    std::printf("clusters needed per coverage level:\n");
    std::printf("  %-14s  %6s  %6s  %6s\n", "suite", "80%", "90%", "95%");
    std::vector<std::vector<std::string>> rows;
    for (std::size_t s = 0; s < cmp.suites.size(); ++s) {
        const auto c80 = cmp.clustersToCover(s, 0.80);
        const auto c90 = cmp.clustersToCover(s, 0.90);
        const auto c95 = cmp.clustersToCover(s, 0.95);
        std::printf("  %-14s  %6zu  %6zu  %6zu\n", cmp.suites[s].c_str(),
                    c80, c90, c95);
        std::vector<std::string> row{cmp.suites[s]};
        for (double v : cmp.cumulative[s])
            row.push_back(std::to_string(v));
        rows.push_back(row);
    }

    std::vector<std::string> header{"suite"};
    for (std::size_t i = 0; i < out.analysis.clustering.centers.rows();
         ++i)
        header.push_back("c" + std::to_string(i + 1));
    const std::string csv = micabench::outputDir() + "/fig5_diversity.csv";
    mica::viz::writeCsv(csv, header, rows);
    const std::string svg = micabench::outputDir() + "/fig5_diversity.svg";
    mica::viz::renderLineChartSvg(
        "Figure 5: cumulative coverage vs number of clusters", series, {})
        .writeFile(svg);
    std::printf("wrote %s and %s\n", csv.c_str(), svg.c_str());
    return 0;
}
