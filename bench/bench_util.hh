/**
 * @file
 * Shared plumbing for the experiment (figure/table) binaries: the default
 * full-scale configuration, a fast mode for CI smoke runs, a progress
 * printer, and output-directory handling.
 *
 * Environment knobs:
 *   MICAPHASE_FAST=1     scale the experiment down ~10x (quick smoke runs)
 *   MICAPHASE_OUT=dir    output directory for CSV/SVG artifacts (default out)
 *   MICAPHASE_TRACE=path export a Chrome trace-event JSON of the run (plus
 *                        a .metrics.json summary); see docs/OBSERVABILITY.md
 */

#ifndef MICAPHASE_BENCH_BENCH_UTIL_HH
#define MICAPHASE_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/pipeline.hh"

namespace micabench {

inline bool
fastMode()
{
    const char *env = std::getenv("MICAPHASE_FAST");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/** Directory for emitted artifacts (created on demand). */
inline std::string
outputDir()
{
    const char *env = std::getenv("MICAPHASE_OUT");
    const std::string dir = env && env[0] ? env : "out";
    std::filesystem::create_directories(dir);
    return dir;
}

/** The experiment configuration used by every figure binary. */
inline mica::core::ExperimentConfig
experimentConfig()
{
    mica::core::ExperimentConfig cfg;
    cfg.cache_dir = outputDir() + "/cache";
    if (const char *trace = std::getenv("MICAPHASE_TRACE");
        trace != nullptr && trace[0] != '\0')
        cfg.trace_path = trace;
    if (fastMode()) {
        cfg.interval_instructions = 20'000;
        cfg.interval_scale = 0.2;
        cfg.samples_per_benchmark = 50;
        cfg.kmeans_k = 120;
        cfg.num_prominent = 40;
        cfg.kmeans_restarts = 2;
    }
    return cfg;
}

/**
 * Stderr progress reporting for the figure binaries: a live line while
 * benchmarks characterize, then one timing line per completed stage.
 */
class ProgressPrinter final : public mica::core::PipelineObserver
{
  public:
    void
    onStage(const mica::core::StageEvent &event) override
    {
        using mica::core::StageEvent;
        if (event.kind == StageEvent::Kind::Progress) {
            std::fprintf(stderr, "\r  characterizing [%3zu/%zu] %-40s",
                         event.done, event.total,
                         std::string(event.item).c_str());
            if (event.done == event.total)
                std::fprintf(stderr, "\n");
        } else if (event.kind == StageEvent::Kind::End) {
            std::fprintf(
                stderr, "  stage %-12s %8.2fs\n",
                std::string(mica::core::stageName(event.stage)).c_str(),
                static_cast<double>(event.elapsed.count()) / 1e6);
        }
    }
};

/** Run (or reload from cache) a given configuration, with progress. */
inline mica::core::ExperimentOutputs
runExperiment(const mica::core::ExperimentConfig &cfg)
{
    const auto t0 = std::chrono::steady_clock::now();
    ProgressPrinter printer;
    auto outputs = mica::core::runFullExperiment(cfg, &printer);
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::fprintf(stderr,
                 "experiment ready in %.1fs (%zu intervals, %zu sampled "
                 "rows, %zu PCs explaining %.1f%%, k=%zu)\n",
                 dt, outputs.characterization.intervals.size(),
                 outputs.sampled.data.rows(), outputs.analysis.pca_components,
                 outputs.analysis.pca_explained * 100.0,
                 outputs.analysis.clustering.centers.rows());
    return outputs;
}

/** Run (or reload from cache) the shared experiment, with progress. */
inline mica::core::ExperimentOutputs
runExperiment()
{
    return runExperiment(experimentConfig());
}

} // namespace micabench

#endif // MICAPHASE_BENCH_BENCH_UTIL_HH
