/**
 * @file
 * Application benchmark: benchmark-level similarity analysis via PCA +
 * hierarchical linkage clustering — the methodology of the related work
 * the paper builds on (Eeckhout et al., PACT 2002; Phansalkar/Joshi et
 * al.). Each benchmark is summarized by its mean characteristic vector,
 * projected into the rescaled PCA space, and agglomerated into a
 * dendrogram.
 *
 * Checks printed:
 *  - the two hmmer editions and the CPU2000/2006 repeats (bzip2, gcc,
 *    mcf) merge early (cross-suite redundancy);
 *  - cutting the tree at 7 clusters and comparing against the true suite
 *    labels quantifies how suite-aligned aggregate behaviour is.
 */

#include <cstdio>
#include <map>

#include "bench/bench_util.hh"
#include "stats/linkage.hh"
#include "stats/pca.hh"

namespace {

using namespace mica;

/** First merge step (0-based) at which the two benchmarks meet. */
int
mergeStepOf(const stats::Dendrogram &tree, std::size_t a, std::size_t b)
{
    // Walk the merge list with union-find-ish tracking.
    std::vector<std::size_t> cluster_of(tree.num_points);
    for (std::size_t i = 0; i < tree.num_points; ++i)
        cluster_of[i] = i;
    std::map<std::size_t, std::vector<std::size_t>> members;
    for (std::size_t i = 0; i < tree.num_points; ++i)
        members[i] = {i};
    for (std::size_t step = 0; step < tree.merges.size(); ++step) {
        const auto &m = tree.merges[step];
        const std::size_t id = tree.num_points + step;
        auto &dst = members[id];
        for (std::size_t p : members[m.left])
            dst.push_back(p);
        for (std::size_t p : members[m.right])
            dst.push_back(p);
        bool has_a = false, has_b = false;
        for (std::size_t p : dst) {
            has_a |= p == a;
            has_b |= p == b;
        }
        if (has_a && has_b)
            return static_cast<int>(step);
        members.erase(m.left);
        members.erase(m.right);
    }
    return -1;
}

} // namespace

int
main()
{
    const auto out = micabench::runExperiment();
    const auto &chars = out.characterization;

    // Aggregate characterization: mean vector per benchmark.
    const std::size_t n = chars.benchmark_ids.size();
    stats::Matrix means(n, metrics::kNumCharacteristics);
    std::vector<std::size_t> counts(n, 0);
    for (const auto &rec : chars.intervals) {
        auto row = means.row(rec.benchmark);
        for (std::size_t c = 0; c < metrics::kNumCharacteristics; ++c)
            row[c] += rec.values[c];
        ++counts[rec.benchmark];
    }
    for (std::size_t b = 0; b < n; ++b) {
        auto row = means.row(b);
        for (std::size_t c = 0; c < metrics::kNumCharacteristics; ++c)
            row[c] /= static_cast<double>(counts[b]);
    }

    // Rescaled PCA space + average-linkage dendrogram.
    const stats::Matrix space = stats::rescaledPcaSpace(means);
    const auto tree =
        stats::agglomerate(space, stats::Linkage::Average);

    // Early-merge pairs: the famous cross-suite twins.
    std::printf("benchmark similarity (PCA + average linkage over "
                "aggregate characteristics)\n\n");
    std::printf("cross-suite twins (merge step out of %zu; earlier = "
                "more similar):\n", tree.merges.size() - 1);
    const std::pair<const char *, const char *> twins[] = {
        {"SPECint2006/hmmer", "BioPerf/hmmer"},
        {"SPECint2000/bzip2", "SPECint2006/bzip2"},
        {"SPECint2000/gcc", "SPECint2006/gcc"},
        {"SPECint2000/mcf", "SPECint2006/mcf"},
        {"BMW/face", "SPECfp2000/facerec"},
        {"BMW/speak", "SPECfp2006/sphinx3"},
        {"MediaBenchII/h264enc", "SPECint2006/h264ref"},
    };
    for (const auto &[x, y] : twins) {
        std::size_t xi = 0, yi = 0;
        for (std::size_t b = 0; b < n; ++b) {
            if (chars.benchmark_ids[b] == x)
                xi = b;
            if (chars.benchmark_ids[b] == y)
                yi = b;
        }
        std::printf("  %-24s ~ %-24s step %d\n", x, y,
                    mergeStepOf(tree, xi, yi));
    }

    // Cut at 7 and measure suite purity (majority-suite fraction).
    const auto labels = tree.cut(7);
    std::map<std::size_t, std::map<std::string, std::size_t>> composition;
    for (std::size_t b = 0; b < n; ++b)
        ++composition[labels[b]][chars.benchmark_suites[b]];
    double pure = 0.0;
    for (const auto &[cluster, suites] : composition) {
        std::size_t best = 0, total = 0;
        for (const auto &[suite, cnt] : suites) {
            best = std::max(best, cnt);
            total += cnt;
        }
        pure += static_cast<double>(best);
        (void)total;
    }
    std::printf("\ncutting at 7 clusters: %.0f%% of benchmarks sit in "
                "their cluster's majority suite\n"
                "(well below 100%%: aggregate behaviour crosses suite "
                "lines, which is why the paper works at phase level)\n",
                100.0 * pure / static_cast<double>(n));

    // Dendrogram of one suite for the terminal (all 77 is too tall).
    std::printf("\nBioPerf + domain-suite neighbourhood (average "
                "linkage):\n\n");
    std::vector<std::size_t> subset;
    std::vector<std::string> sub_labels;
    for (std::size_t b = 0; b < n; ++b) {
        const auto &suite = chars.benchmark_suites[b];
        if (suite == "BioPerf" || suite == "BMW" ||
            suite == "MediaBenchII") {
            subset.push_back(b);
            sub_labels.push_back(chars.benchmark_ids[b]);
        }
    }
    const stats::Matrix sub = space.selectRows(subset);
    std::printf("%s\n",
                stats::renderDendrogram(stats::agglomerate(sub),
                                        sub_labels)
                    .c_str());
    return 0;
}
