/**
 * @file
 * Section 4.2 anecdotes, quantified:
 *
 *  1. astar splits across two very different prominent phase behaviours
 *     (an erratic-branch benchmark-specific phase and a well-behaved
 *     shared phase);
 *  2. the SPECint2006 and BioPerf editions of hmmer overlap only
 *     partially — a major part of the SPEC version resembles a small
 *     part of the BioPerf version, while the rest of the BioPerf version
 *     is dissimilar.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "bench/bench_util.hh"

namespace {

using namespace mica;

std::uint32_t
benchmarkIndex(const core::CharacterizationResult &chars,
               const std::string &id)
{
    for (std::uint32_t b = 0; b < chars.benchmark_ids.size(); ++b)
        if (chars.benchmark_ids[b] == id)
            return b;
    std::fprintf(stderr, "missing benchmark %s\n", id.c_str());
    std::exit(1);
}

/** Rows of one benchmark per cluster id. */
std::map<std::size_t, std::size_t>
clustersOf(const core::ExperimentOutputs &out, std::uint32_t bench)
{
    std::map<std::size_t, std::size_t> rows;
    for (std::size_t r = 0; r < out.sampled.benchmark_of_row.size(); ++r)
        if (out.sampled.benchmark_of_row[r] == bench)
            ++rows[out.analysis.clustering.assignment[r]];
    return rows;
}

} // namespace

int
main()
{
    namespace m = metrics::midx;
    const auto out = micabench::runExperiment();
    const auto &chars = out.characterization;
    const double samples = out.config.samples_per_benchmark;

    // ---- Anecdote 1: astar's phase split. ----
    const auto astar = benchmarkIndex(chars, "SPECint2006/astar");
    const auto astar_clusters = clustersOf(out, astar);
    std::printf("anecdote 1: SPECint2006/astar spreads over %zu clusters; "
                "its two heaviest phases:\n\n",
                astar_clusters.size());

    // The two clusters holding the most astar rows.
    std::vector<std::pair<std::size_t, std::size_t>> heaviest(
        astar_clusters.begin(), astar_clusters.end());
    std::sort(heaviest.begin(), heaviest.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    for (std::size_t i = 0; i < 2 && i < heaviest.size(); ++i) {
        const auto [cluster_id, rows] = heaviest[i];
        // Find the summary for this cluster id.
        const core::ClusterSummary *summary = nullptr;
        for (const auto &c : out.analysis.clusters)
            if (c.cluster == cluster_id)
                summary = &c;
        const auto rep = out.sampled.data.row(summary->representative_row);
        std::printf("  phase %zu [%s]: %.1f%% of astar\n", i + 1,
                    std::string(core::clusterKindName(summary->kind))
                        .c_str(),
                    100.0 * static_cast<double>(rows) / samples);
        std::printf("    ppm_gag_12 miss %.3f | taken rate %.3f | "
                    "gls_64 %.3f | data 64B blocks %.0f\n",
                    rep[m::PpmGag12], rep[m::BranchTakenRate],
                    rep[m::GlobalLoadStride64],
                    rep[m::DataFootprint64B]);
    }
    std::printf("\n  astar splits across two prominent phases with "
                "starkly different branch predictability and locality — "
                "the paper's observation (there, the erratic phase is "
                "benchmark-specific and has the worst predictability "
                "overall; here the erratic phase lands in a mixed search "
                "cluster while the sweep phase is astar-specific).\n\n");

    // ---- Anecdote 2: hmmer (SPEC) vs hmmer (BioPerf). ----
    const auto spec_hmmer = benchmarkIndex(chars, "SPECint2006/hmmer");
    const auto bio_hmmer = benchmarkIndex(chars, "BioPerf/hmmer");
    const auto spec_clusters = clustersOf(out, spec_hmmer);
    const auto bio_clusters = clustersOf(out, bio_hmmer);

    double spec_shared = 0.0, bio_shared = 0.0;
    for (const auto &[cluster, rows] : spec_clusters)
        if (bio_clusters.count(cluster))
            spec_shared += static_cast<double>(rows);
    for (const auto &[cluster, rows] : bio_clusters)
        if (spec_clusters.count(cluster))
            bio_shared += static_cast<double>(rows);
    spec_shared /= samples;
    bio_shared /= samples;

    std::printf("anecdote 2: hmmer overlap across suites\n\n");
    std::printf("  %.1f%% of SPECint2006/hmmer lies in clusters also "
                "containing BioPerf/hmmer\n",
                spec_shared * 100.0);
    std::printf("  %.1f%% of BioPerf/hmmer lies in clusters also "
                "containing SPECint2006/hmmer\n",
                bio_shared * 100.0);
    std::printf("  => the two editions of hmmer overlap only partially "
                "(paper: 68%% of the SPEC version resembles 5%% of the "
                "BioPerf version; the remaining 59%% of the BioPerf "
                "version is dissimilar)\n");
    return 0;
}
