/**
 * @file
 * Ablation: interval granularity (paper section 3.9).
 *
 * The methodology applies at any interval size: smaller intervals give a
 * finer-grained phase view (more distinct behaviours per benchmark),
 * larger intervals blur consecutive phases together. This binary
 * quantifies that trade-off on a handful of strongly phased benchmarks
 * by clustering each benchmark's own intervals at several granularities
 * and reporting how many phases (BIC-chosen k) are visible.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/characterize.hh"
#include "stats/kmeans.hh"
#include "stats/pca.hh"
#include "viz/charts.hh"

namespace {

using namespace mica;

/** BIC-best number of clusters among k in [1, 6] for one interval set. */
std::size_t
visiblePhases(const std::vector<metrics::CharacteristicVector> &intervals,
              std::uint64_t seed)
{
    if (intervals.size() < 2)
        return intervals.size();
    stats::Matrix data(0, 0);
    for (const auto &v : intervals)
        data.appendRow(v);
    const stats::Matrix reduced = stats::rescaledPcaSpace(data);

    double best_bic = -1e300;
    std::size_t best_k = 1;
    for (std::size_t k = 1; k <= 6 && k < intervals.size(); ++k) {
        stats::KMeans::Options opts;
        opts.k = k;
        opts.restarts = 3;
        opts.seed = seed + k;
        const auto res = stats::KMeans::run(reduced, opts);
        if (res.bic > best_bic) {
            best_bic = res.bic;
            best_k = k;
        }
    }
    return best_k;
}

} // namespace

int
main()
{
    const workloads::SuiteCatalog catalog;
    const std::uint64_t budget = 1600000; // instructions per benchmark

    const char *ids[] = {"SPECint2006/astar", "SPECint2000/gzip",
                         "BioPerf/fasta", "MediaBenchII/h264enc"};
    const std::uint64_t sizes[] = {10000, 25000, 50000, 100000, 400000};

    std::printf("Ablation: interval granularity vs visible phase count "
                "(BIC-chosen k over each benchmark's own intervals)\n\n");
    std::printf("  %-22s", "benchmark");
    for (std::uint64_t s : sizes)
        std::printf(" %8lluK", static_cast<unsigned long long>(s / 1000));
    std::printf("\n");

    std::vector<std::vector<std::string>> rows;
    for (const char *id : ids) {
        const auto *bench = catalog.find(id);
        if (!bench)
            continue;
        std::printf("  %-22s", id);
        std::vector<std::string> row{id};
        for (std::uint64_t size : sizes) {
            const auto intervals = core::characterizeProgram(
                bench->build(0), size,
                static_cast<std::uint32_t>(budget / size));
            const std::size_t phases = visiblePhases(intervals, 7);
            std::printf(" %9zu", phases);
            row.push_back(std::to_string(phases));
        }
        std::printf("\n");
        rows.push_back(row);
    }

    std::printf("\nsmaller intervals expose more distinct phases; very "
                "large intervals blur a benchmark toward a single "
                "aggregate behaviour (paper section 3.9: the interval "
                "size is an experimenter's coverage/accuracy knob; 100M "
                "was chosen because it matches detailed-simulation "
                "checkpoint sizes).\n");

    std::vector<std::string> header{"benchmark"};
    for (std::uint64_t s : sizes)
        header.push_back(std::to_string(s));
    const std::string csv =
        micabench::outputDir() + "/ablation_granularity.csv";
    mica::viz::writeCsv(csv, header, rows);
    std::printf("wrote %s\n", csv.c_str());
    return 0;
}
