/**
 * @file
 * Application benchmark: cache-sensitivity analysis from reuse distances.
 *
 * One pass with the stack-distance analyzer yields every benchmark's
 * fully-associative LRU miss-rate curve across all cache sizes — the
 * locality view behind the paper's footprint and stride characteristics.
 * The predicted miss rate at the timing model's L1D capacity is
 * cross-checked against that concrete (set-associative) simulation.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "mica/reuse.hh"
#include "viz/charts.hh"
#include "vm/cpu.hh"
#include "vm/timing.hh"

int
main()
{
    using namespace mica;

    const workloads::SuiteCatalog catalog;
    const std::uint64_t budget = micabench::fastMode() ? 200000 : 800000;
    const std::uint64_t sizes_kb[] = {1, 4, 16, 64, 256, 1024};

    const char *ids[] = {
        "SPECint2006/mcf",     "SPECfp2006/lbm",
        "SPECint2000/crafty",  "BioPerf/grappa",
        "MediaBenchII/h264enc"};

    std::printf("Cache sensitivity from LRU stack distances "
                "(fully-associative miss rate, %llu-instruction runs)\n\n",
                static_cast<unsigned long long>(budget));
    std::printf("  %-22s", "benchmark");
    for (std::uint64_t kb : sizes_kb)
        std::printf(" %6lluKB", static_cast<unsigned long long>(kb));
    std::printf(" | L1D sim\n");

    std::vector<std::vector<std::string>> rows;
    for (const char *id : ids) {
        const auto *bench = catalog.find(id);
        if (!bench)
            continue;

        // One combined pass: reuse analyzer + timing model.
        vm::Cpu cpu(bench->build(0));
        profiler::ReuseDistanceAnalyzer reuse;
        vm::TimingModel timing;
        vm::TeeSink tee;
        tee.attach(&reuse);
        tee.attach(&timing);
        (void)cpu.run(budget, &tee);

        std::printf("  %-22s", id);
        std::vector<std::string> row{id};
        for (std::uint64_t kb : sizes_kb) {
            const double miss =
                reuse.missRateForCapacity(kb * 1024 / 64);
            std::printf(" %7.2f%%", miss * 100.0);
            row.push_back(std::to_string(miss));
        }
        std::printf(" | %6.2f%%\n",
                    timing.l1d().missRate() * 100.0);
        rows.push_back(row);
    }

    std::printf("\nreading the table: mcf's pointer chasing stays miss-"
                "bound until its whole network fits; lbm streams (no "
                "temporal reuse at any practical size); crafty/grappa/"
                "codecs have compact hot sets. The last column is the "
                "concrete 16KB 2-way L1D from the timing model — close "
                "to the 16KB fully-associative prediction, the residual "
                "gap being conflict misses.\n");

    std::vector<std::string> header{"benchmark"};
    for (std::uint64_t kb : sizes_kb)
        header.push_back(std::to_string(kb) + "KB");
    const std::string csv =
        micabench::outputDir() + "/app_cache_sensitivity.csv";
    mica::viz::writeCsv(csv, header, rows);
    std::printf("wrote %s\n", csv.c_str());
    return 0;
}
