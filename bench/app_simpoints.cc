/**
 * @file
 * Application benchmark (paper section 5.3): simulation-point selection.
 *
 * Quantifies the paper's two implications:
 *  1. per-benchmark SimPoint-style selection slashes the simulated
 *     instruction count at a small estimation error;
 *  2. with cross-benchmark sharing, CPU2006 needs only slightly more
 *     simulation points than CPU2000 to cover its major phase behaviours,
 *     while the domain-specific suites need very few — and BioPerf, with
 *     its unique behaviour, is the domain suite actually worth the extra
 *     simulation time.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/simpoints.hh"
#include "viz/charts.hh"

int
main()
{
    using namespace mica;

    const auto out = micabench::runExperiment();
    const auto &chars = out.characterization;

    // ---- Per-benchmark SimPoint selection for a few famous cases. ----
    std::printf("per-benchmark simulation points (max 8 per benchmark):\n");
    std::printf("  %-22s %8s %12s %12s\n", "benchmark", "points",
                "simulated", "est. error");
    for (const char *id :
         {"SPECint2006/astar", "SPECint2006/mcf", "SPECfp2006/lbm",
          "BioPerf/fasta", "MediaBenchII/h264enc"}) {
        std::uint32_t bench = 0;
        for (std::uint32_t b = 0; b < chars.benchmark_ids.size(); ++b)
            if (chars.benchmark_ids[b] == id)
                bench = b;
        const auto sel = core::selectSimPoints(chars, bench, 8,
                                               out.config.seed);
        std::printf("  %-22s %8zu %11.1f%% %11.1f%%\n", id,
                    sel.points.size(), sel.simulated_fraction * 100.0,
                    sel.estimation_error * 100.0);
    }

    // ---- Cross-benchmark sharing per suite. ----
    const auto summaries = core::crossBenchmarkSimPoints(
        chars, out.sampled, out.analysis, 8);
    std::printf("\ncross-benchmark simulation points per suite "
                "(vs 8 isolated points per benchmark):\n");
    std::printf("  %-14s %9s %10s %14s %9s\n", "suite", "shared",
                "shared@90%", "isolated", "saving");
    std::vector<std::vector<std::string>> rows;
    for (const auto &s : summaries) {
        const double saving =
            1.0 - static_cast<double>(s.shared_points) /
                      static_cast<double>(s.isolated_points);
        std::printf("  %-14s %9zu %10zu %14zu %8.0f%%\n", s.suite.c_str(),
                    s.shared_points, s.shared_points_90,
                    s.isolated_points, saving * 100.0);
        rows.push_back({s.suite, std::to_string(s.shared_points),
                        std::to_string(s.shared_points_90),
                        std::to_string(s.isolated_points)});
    }

    std::printf("\npaper implications checked:\n"
                " - CPU2006 needs only modestly more points than CPU2000 "
                "for the same coverage;\n"
                " - MediaBench II / BMW add so little unique behaviour "
                "that simulating them barely adds points beyond SPEC;\n"
                " - BioPerf's unique phases are the ones that genuinely "
                "require extra simulation.\n");

    const std::string csv =
        micabench::outputDir() + "/app_simpoints.csv";
    mica::viz::writeCsv(
        csv, {"suite", "shared_points", "shared_points_90",
              "isolated_points"},
        rows);
    std::printf("wrote %s\n", csv.c_str());
    return 0;
}
