/**
 * @file
 * Figure 1: Pearson correlation of the distances between prominent phases
 * in the GA-reduced workload space versus the full 69-characteristic
 * space, as a function of the number of retained characteristics.
 *
 * Paper shape to reproduce: a rising curve reaching ~0.8 around 12
 * retained characteristics.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "viz/charts.hh"
#include "viz/figure_charts.hh"

int
main()
{
    const auto out = micabench::runExperiment();
    const auto phases =
        mica::core::prominentPhaseMatrix(out.sampled, out.analysis);
    const mica::ga::FeatureSelector selector(phases);

    mica::ga::GaOptions opts;
    opts.seed = out.config.seed ^ 0x6A;
    const std::size_t max_count = micabench::fastMode() ? 8 : 20;
    std::fprintf(stderr, "sweeping GA subset sizes 1..%zu...\n", max_count);
    const auto sweep = selector.sweepSubsetSizes(max_count, opts);

    std::printf("Figure 1: distance correlation vs number of retained "
                "characteristics\n\n");
    std::printf("  %-10s %-12s %s\n", "#retained", "correlation",
                "generations");
    std::vector<std::vector<std::string>> rows;
    mica::viz::Series series{"correlation", {}};
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        std::printf("  %-10zu %-12.4f %d\n", i + 1, sweep[i].fitness,
                    sweep[i].generations);
        rows.push_back({std::to_string(i + 1),
                        std::to_string(sweep[i].fitness)});
        series.values.push_back(sweep[i].fitness);
    }
    std::printf("\n%s\n",
                mica::viz::asciiCurves("correlation vs #retained",
                                       {series}, 60, 16)
                    .c_str());

    const std::string csv =
        micabench::outputDir() + "/fig1_ga_correlation.csv";
    mica::viz::writeCsv(csv, {"retained", "pearson_correlation"}, rows);
    const std::string svg =
        micabench::outputDir() + "/fig1_ga_correlation.svg";
    mica::viz::renderLineChartSvg(
        "Figure 1: correlation vs retained characteristics", {series}, {})
        .writeFile(svg);
    std::printf("wrote %s and %s\n", csv.c_str(), svg.c_str());
    return 0;
}
