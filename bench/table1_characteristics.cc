/**
 * @file
 * Table 1: the 69 microarchitecture-independent characteristics, grouped
 * by category with per-category counts (paper section 3.3).
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "mica/metrics.hh"

int
main()
{
    using namespace mica::metrics;

    std::printf("Table 1: microarchitecture-independent characteristics "
                "(%zu total)\n\n", kNumCharacteristics);

    std::map<Category, std::vector<std::size_t>> by_category;
    for (std::size_t i = 0; i < kNumCharacteristics; ++i)
        by_category[metricInfo(i).category].push_back(i);

    for (const auto &[category, indices] : by_category) {
        std::printf("%-22s (#%zu)\n",
                    std::string(categoryName(category)).c_str(),
                    indices.size());
        for (std::size_t idx : indices) {
            const MetricInfo &info = metricInfo(idx);
            std::printf("  [%2zu] %-22s %s\n", idx,
                        std::string(info.name).c_str(),
                        std::string(info.description).c_str());
        }
        std::printf("\n");
    }
    return 0;
}
