/**
 * @file
 * Table 2: the key microarchitecture-independent characteristics retained
 * by the genetic algorithm (12 in the paper, at a distance correlation of
 * ~0.8), computed over the prominent phase behaviours.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "viz/charts.hh"

int
main()
{
    const auto out = micabench::runExperiment();

    std::fprintf(stderr, "running GA feature selection (12 of 69)...\n");
    const auto result = mica::core::selectKeyCharacteristics(out, 12);

    std::printf("Table 2: key characteristics retained by the GA "
                "(fitness: Pearson distance correlation = %.3f, "
                "%d generations)\n\n",
                result.fitness, result.generations);
    std::vector<std::vector<std::string>> rows;
    for (std::size_t i = 0; i < result.selected.size(); ++i) {
        const auto idx = result.selected[i];
        const auto &info = mica::metrics::metricInfo(idx);
        std::printf("  %2zu. [%2zu] %-22s %s\n", i + 1, idx,
                    std::string(info.name).c_str(),
                    std::string(info.description).c_str());
        rows.push_back({std::to_string(idx), std::string(info.name),
                        std::string(info.description)});
    }
    std::printf("\n(paper Table 2 retains: branch transition rate, PPM "
                "GAs-4 miss rate, two instruction-mix fractions, "
                "instruction & data footprints, four stride "
                "probabilities, register degree of use and operand "
                "count — a spread over all six categories)\n");

    const std::string csv =
        micabench::outputDir() + "/table2_key_characteristics.csv";
    mica::viz::writeCsv(csv, {"index", "name", "description"}, rows);
    std::printf("wrote %s\n", csv.c_str());
    return 0;
}
