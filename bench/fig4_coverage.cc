/**
 * @file
 * Figure 4: workload-space coverage per benchmark suite — the number of
 * clusters (out of k) that contain at least one interval of the suite.
 *
 * Paper shape to reproduce: SPEC CPU2006 covers the most (fp >= int),
 * CPU2006 > CPU2000, and the domain-specific suites (BioPerf, BMW,
 * MediaBench II) cover a much narrower part of the space.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "viz/charts.hh"
#include "viz/figure_charts.hh"

int
main()
{
    const auto out = micabench::runExperiment();
    const auto &cmp = out.comparison;

    std::vector<mica::viz::Bar> bars;
    std::vector<std::vector<std::string>> rows;
    for (std::size_t s = 0; s < cmp.suites.size(); ++s) {
        bars.push_back({cmp.suites[s],
                        static_cast<double>(cmp.coverage[s])});
        rows.push_back({cmp.suites[s], std::to_string(cmp.coverage[s])});
    }

    std::printf("%s\n",
                mica::viz::asciiBarChart(
                    "Figure 4: workload space coverage per suite "
                    "(clusters out of " +
                        std::to_string(out.analysis.clustering.centers
                                           .rows()) +
                        ")",
                    bars)
                    .c_str());

    const std::string csv = micabench::outputDir() + "/fig4_coverage.csv";
    mica::viz::writeCsv(csv, {"suite", "clusters_covered"}, rows);
    const std::string svg = micabench::outputDir() + "/fig4_coverage.svg";
    mica::viz::renderBarChartSvg("Figure 4: workload space coverage",
                                 bars, {})
        .writeFile(svg);
    std::printf("wrote %s and %s\n", csv.c_str(), svg.c_str());
    return 0;
}
