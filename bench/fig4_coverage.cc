/**
 * @file
 * Figure 4: workload-space coverage per benchmark suite — the number of
 * clusters (out of k) that contain at least one interval of the suite.
 *
 * Paper shape to reproduce: SPEC CPU2006 covers the most (fp >= int),
 * CPU2006 > CPU2000, and the domain-specific suites (BioPerf, BMW,
 * MediaBench II) cover a much narrower part of the space.
 *
 * The run also freezes the experiment into a model::PhaseModel artifact
 * and re-derives the same coverage numbers from the reloaded file alone
 * (docs/MODEL.md) — exiting non-zero if the two disagree.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "model/phase_model.hh"
#include "viz/charts.hh"
#include "viz/figure_charts.hh"

int
main()
{
    auto cfg = micabench::experimentConfig();
    const std::string model_path =
        micabench::outputDir() + "/phase_model.bin";
    cfg.model_path = model_path;
    const auto out = micabench::runExperiment(cfg);
    const auto &cmp = out.comparison;

    std::vector<mica::viz::Bar> bars;
    std::vector<std::vector<std::string>> rows;
    for (std::size_t s = 0; s < cmp.suites.size(); ++s) {
        bars.push_back({cmp.suites[s],
                        static_cast<double>(cmp.coverage[s])});
        rows.push_back({cmp.suites[s], std::to_string(cmp.coverage[s])});
    }

    std::printf("%s\n",
                mica::viz::asciiBarChart(
                    "Figure 4: workload space coverage per suite "
                    "(clusters out of " +
                        std::to_string(out.analysis.clustering.centers
                                           .rows()) +
                        ")",
                    bars)
                    .c_str());

    const std::string csv = micabench::outputDir() + "/fig4_coverage.csv";
    mica::viz::writeCsv(csv, {"suite", "clusters_covered"}, rows);
    const std::string svg = micabench::outputDir() + "/fig4_coverage.svg";
    mica::viz::renderBarChartSvg("Figure 4: workload space coverage",
                                 bars, {})
        .writeFile(svg);
    std::printf("wrote %s and %s\n", csv.c_str(), svg.c_str());

    // Cross-check: the figure must be reproducible from the frozen model
    // file alone, with no pipeline state in hand.
    const auto model = mica::model::PhaseModel::load(model_path);
    const auto frozen = model.trainingCoverage();
    if (frozen.suites != cmp.suites || frozen.coverage != cmp.coverage) {
        std::fprintf(stderr,
                     "FAILED: coverage recomputed from %s deviates from "
                     "the live run\n",
                     model_path.c_str());
        return 1;
    }
    std::printf("coverage reproduced from the frozen model %s: OK\n",
                model_path.c_str());
    return 0;
}
