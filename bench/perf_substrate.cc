/**
 * @file
 * google-benchmark microbenchmarks for the substrate itself: VM
 * interpretation speed (with and without the MICA profiler attached),
 * the individual metric analyzers, and the statistics kernels. These are
 * the costs that determine how large an experiment the library can run.
 */

#include <benchmark/benchmark.h>

#include "asm/assembler.hh"
#include "ga/feature_select.hh"
#include "mica/profiler.hh"
#include "stats/kmeans.hh"
#include "stats/linkage.hh"
#include "stats/pca.hh"
#include "stats/rng.hh"
#include "vm/cpu.hh"
#include "vm/timing.hh"
#include "workloads/workload.hh"

namespace {

using namespace mica;

isa::Program
mixedProgram()
{
    return assembler::assemble(R"(
        .data
        buf: .zero 65536
        .text
        addi x4, x0, buf
    loop:
        ld x5, 0(x4)
        add x5, x5, x6
        sd x5, 8(x4)
        addi x4, x4, 8
        andi x4, x4, 0x7fff
        addi x4, x4, buf
        xor x6, x6, x5
        slti x7, x5, 100
        bne x7, x0, skip
        addi x8, x8, 1
    skip:
        jal x0, loop
    )");
}

void
BM_VmInterpret(benchmark::State &state)
{
    vm::Cpu cpu(mixedProgram());
    for (auto _ : state)
        (void)cpu.run(10000);
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_VmInterpret)->Unit(benchmark::kMicrosecond);

void
BM_VmWithMicaProfiler(benchmark::State &state)
{
    vm::Cpu cpu(mixedProgram());
    profiler::MicaProfiler prof(100000);
    for (auto _ : state)
        (void)cpu.run(10000, &prof);
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_VmWithMicaProfiler)->Unit(benchmark::kMicrosecond);

void
BM_BenchmarkProgramBuild(benchmark::State &state)
{
    const workloads::SuiteCatalog catalog;
    const auto *bench = catalog.find("SPECint2006/gcc");
    for (auto _ : state)
        benchmark::DoNotOptimize(bench->build(0));
}
BENCHMARK(BM_BenchmarkProgramBuild)->Unit(benchmark::kMillisecond);

stats::Matrix
randomMatrix(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    stats::Rng rng(seed);
    stats::Matrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = rng.nextGaussian();
    return m;
}

void
BM_PcaFit69(benchmark::State &state)
{
    const auto data = randomMatrix(
        static_cast<std::size_t>(state.range(0)), 69, 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(stats::Pca::fit(data));
}
BENCHMARK(BM_PcaFit69)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void
BM_KMeans(benchmark::State &state)
{
    const auto data = randomMatrix(
        static_cast<std::size_t>(state.range(0)), 16, 2);
    stats::KMeans::Options opts;
    opts.k = static_cast<std::size_t>(state.range(1));
    opts.restarts = 1;
    opts.max_iterations = 20;
    for (auto _ : state)
        benchmark::DoNotOptimize(stats::KMeans::run(data, opts));
}
BENCHMARK(BM_KMeans)
    ->Args({1000, 50})
    ->Args({4000, 100})
    ->Unit(benchmark::kMillisecond);

void
BM_GaFitnessEvaluation(benchmark::State &state)
{
    const auto phases = randomMatrix(100, 69, 3);
    const ga::FeatureSelector selector(phases);
    std::vector<std::size_t> subset;
    for (std::size_t i = 0; i < 12; ++i)
        subset.push_back(i * 5);
    for (auto _ : state)
        benchmark::DoNotOptimize(selector.fitnessOf(subset));
}
BENCHMARK(BM_GaFitnessEvaluation)->Unit(benchmark::kMicrosecond);

void
BM_VmWithTimingModel(benchmark::State &state)
{
    vm::Cpu cpu(mixedProgram());
    vm::TimingModel timing;
    for (auto _ : state)
        (void)cpu.run(10000, &timing);
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_VmWithTimingModel)->Unit(benchmark::kMicrosecond);

void
BM_AgglomerativeLinkage(benchmark::State &state)
{
    const auto data = randomMatrix(
        static_cast<std::size_t>(state.range(0)), 12, 5);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            stats::agglomerate(data, stats::Linkage::Average));
}
BENCHMARK(BM_AgglomerativeLinkage)
    ->Arg(77)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);

void
BM_EncodeDecodeRoundTrip(benchmark::State &state)
{
    const isa::Instruction in{isa::Opcode::Addi, 5, 6, 0, -1234};
    for (auto _ : state)
        benchmark::DoNotOptimize(isa::decode(isa::encode(in)));
}
BENCHMARK(BM_EncodeDecodeRoundTrip);

} // namespace

BENCHMARK_MAIN();
