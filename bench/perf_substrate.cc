/**
 * @file
 * google-benchmark microbenchmarks for the substrate itself: VM
 * interpretation speed (with and without the MICA profiler attached),
 * the individual metric analyzers, and the statistics kernels. These are
 * the costs that determine how large an experiment the library can run.
 *
 * After the registered benchmarks run, a serial-vs-parallel speedup table
 * for the thread-pooled stats stages (k-means restarts, GA fitness, PCA
 * covariance) is printed and recorded in
 * ${MICAPHASE_OUT:-out}/BENCH_parallel_speedup.json, including a bitwise
 * determinism cross-check between the serial and parallel runs. A second
 * table measures the obs tracing layer's overhead (traced vs untraced
 * pipeline, with a bitwise result cross-check) and is recorded in
 * BENCH_tracing_overhead.json. A third table compares the naive k-means
 * scan against the Hamerly-pruned engine — wall time, fraction of distance
 * evaluations skipped, GA fitness cache hit rate, and a bitwise
 * cross-check of both paths — recorded in BENCH_kmeans_speedup.json. A
 * fourth table measures the frozen phase-model store (docs/MODEL.md):
 * training the mini-pipeline cold versus loading the saved model and
 * projecting one new benchmark into the frozen space, plus the model
 * file size — recorded in BENCH_model_query.json.
 *
 * A fifth table exercises the static-analysis stack (docs/ANALYSIS.md):
 * catalog-wide verify + StaticFeaturesV2 wall time, the diagnostics
 * histogram over all verifier check classes, a bitwise determinism
 * cross-check of the analyses across 1/2/4 worker threads, and the
 * static-vs-dynamic feature validation — per-feature Spearman/Pearson
 * correlation across all catalog workloads for the instruction-mix,
 * stride-mix and ILP feature groups — recorded in
 * BENCH_static_analysis.json.
 *
 * A sixth table measures the serving path (docs/SERVING.md): mmap
 * zero-copy model open versus the copying loader, and a batch-size ×
 * load-path throughput sweep of the fused placeBatch kernel, with a
 * bitwise cross-check of every placement against the unfused
 * projectBenchmark oracle and the row-at-a-time projectInterval path —
 * recorded in BENCH_model_serve.json.
 *
 * A seventh table measures the live-update path (docs/MODEL.md "Deltas &
 * drift"): ModelUpdater ingest throughput, the dedup-drop fraction at a
 * median-distance threshold, the refinement drift bound versus its
 * threshold, and LiveModel hot-swap latency — plus a
 * frozen_path_identical flag (placements after an appended delta stay
 * bitwise identical to the pre-delta oracle through both loaders) that CI
 * hard-gates on — recorded in BENCH_model_update.json.
 *
 * An eighth table measures the dispatched SIMD kernel layer
 * (docs/PERFORMANCE.md "SIMD kernels"): scalar-oracle vs best-vector-
 * level wall time for each stats kernel at serving-realistic shapes
 * (p=69, m=16, k=300), a memcmp bitwise cross-check of every vector
 * output against the scalar bits (CI hard-gates the aggregate flag), and
 * a STREAM-style Copy/Scale/Add/Triad bandwidth sweep from L1-resident
 * to DRAM-resident working sets — recorded in BENCH_simd_kernels.json.
 *
 * A ninth table measures the graph-based approximate nearest-center
 * index (docs/ANN.md): for k in {300, 1024, 4096, 16384} centers it
 * times the exact per-row scan against CenterIndex beam search over the
 * same query stream, records recall@1 (with bitwise dist2 equality on
 * every hit), the fraction of distance evaluations actually computed,
 * and an exact_path_identical flag (projectRows with a null finder stays
 * memcmp-equal to the per-row nearestCenter oracle) — recorded in
 * BENCH_ann_placement.json. CI hard-gates the recall floor and the
 * exact-path flag.
 *
 * MICAPHASE_SUBSTRATE_TABLES selects which post-benchmark tables run: a
 * comma-separated subset of "parallel", "tracing", "kmeans", "model",
 * "static", "serve", "update", "simd", "ann" (unset runs all nine). CI's
 * bench smoke step runs "parallel", "kmeans", "static", "serve",
 * "update", "simd" and "ann" in turn.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/static_features.hh"
#include "analysis/verifier.hh"
#include "ann/center_index.hh"
#include "asm/assembler.hh"
#include "bench/bench_util.hh"
#include "bench/stream_kernels.hh"
#include "core/characterize.hh"
#include "mica/metrics.hh"
#include "stats/summary.hh"
#include "ga/feature_select.hh"
#include "model/live_model.hh"
#include "model/model_view.hh"
#include "model/phase_model.hh"
#include "model/reader.hh"
#include "model/update.hh"
#include "mica/profiler.hh"
#include "obs/trace.hh"
#include "stats/distance.hh"
#include "stats/eigen.hh"
#include "stats/kmeans.hh"
#include "stats/linkage.hh"
#include "stats/pca.hh"
#include "stats/projection.hh"
#include "stats/rng.hh"
#include "stats/simd.hh"
#include "vm/cpu.hh"
#include "vm/timing.hh"
#include "workloads/workload.hh"

namespace {

using namespace mica;

isa::Program
mixedProgram()
{
    return assembler::assemble(R"(
        .data
        buf: .zero 65536
        .text
        addi x4, x0, buf
    loop:
        ld x5, 0(x4)
        add x5, x5, x6
        sd x5, 8(x4)
        addi x4, x4, 8
        andi x4, x4, 0x7fff
        addi x4, x4, buf
        xor x6, x6, x5
        slti x7, x5, 100
        bne x7, x0, skip
        addi x8, x8, 1
    skip:
        jal x0, loop
    )");
}

void
BM_VmInterpret(benchmark::State &state)
{
    vm::Cpu cpu(mixedProgram());
    for (auto _ : state)
        (void)cpu.run(10000);
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_VmInterpret)->Unit(benchmark::kMicrosecond);

void
BM_VmWithMicaProfiler(benchmark::State &state)
{
    vm::Cpu cpu(mixedProgram());
    profiler::MicaProfiler prof(100000);
    for (auto _ : state)
        (void)cpu.run(10000, &prof);
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_VmWithMicaProfiler)->Unit(benchmark::kMicrosecond);

void
BM_BenchmarkProgramBuild(benchmark::State &state)
{
    const workloads::SuiteCatalog catalog;
    const auto *bench = catalog.find("SPECint2006/gcc");
    for (auto _ : state)
        benchmark::DoNotOptimize(bench->build(0));
}
BENCHMARK(BM_BenchmarkProgramBuild)->Unit(benchmark::kMillisecond);

stats::Matrix
randomMatrix(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    stats::Rng rng(seed);
    stats::Matrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = rng.nextGaussian();
    return m;
}

void
BM_PcaFit69(benchmark::State &state)
{
    const auto data = randomMatrix(
        static_cast<std::size_t>(state.range(0)), 69, 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(stats::Pca::fit(data));
}
BENCHMARK(BM_PcaFit69)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void
BM_KMeans(benchmark::State &state)
{
    const auto data = randomMatrix(
        static_cast<std::size_t>(state.range(0)), 16, 2);
    stats::KMeans::Options opts;
    opts.k = static_cast<std::size_t>(state.range(1));
    opts.restarts = 1;
    opts.max_iterations = 20;
    for (auto _ : state)
        benchmark::DoNotOptimize(stats::KMeans::run(data, opts));
}
BENCHMARK(BM_KMeans)
    ->Args({1000, 50})
    ->Args({4000, 100})
    ->Unit(benchmark::kMillisecond);

void
BM_KMeansRestartsThreaded(benchmark::State &state)
{
    const auto data = randomMatrix(3000, 16, 2);
    stats::KMeans::Options opts;
    opts.k = 64;
    opts.restarts = 8;
    opts.max_iterations = 12;
    opts.threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(stats::KMeans::run(data, opts));
}
BENCHMARK(BM_KMeansRestartsThreaded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_GaSelectThreaded(benchmark::State &state)
{
    const auto phases = randomMatrix(100, 69, 3);
    const ga::FeatureSelector selector(phases);
    ga::GaOptions opts;
    opts.target_count = 12;
    opts.max_generations = 4;
    opts.patience = 4;
    opts.threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(selector.select(opts));
}
BENCHMARK(BM_GaSelectThreaded)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_PcaCovarianceThreaded(benchmark::State &state)
{
    const auto data = randomMatrix(20000, 69, 5);
    for (auto _ : state)
        benchmark::DoNotOptimize(stats::covarianceMatrix(
            data, static_cast<unsigned>(state.range(0))));
}
BENCHMARK(BM_PcaCovarianceThreaded)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_GaFitnessEvaluation(benchmark::State &state)
{
    const auto phases = randomMatrix(100, 69, 3);
    const ga::FeatureSelector selector(phases);
    std::vector<std::size_t> subset;
    for (std::size_t i = 0; i < 12; ++i)
        subset.push_back(i * 5);
    for (auto _ : state)
        benchmark::DoNotOptimize(selector.fitnessOf(subset));
}
BENCHMARK(BM_GaFitnessEvaluation)->Unit(benchmark::kMicrosecond);

void
BM_VmWithTimingModel(benchmark::State &state)
{
    vm::Cpu cpu(mixedProgram());
    vm::TimingModel timing;
    for (auto _ : state)
        (void)cpu.run(10000, &timing);
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_VmWithTimingModel)->Unit(benchmark::kMicrosecond);

void
BM_AgglomerativeLinkage(benchmark::State &state)
{
    const auto data = randomMatrix(
        static_cast<std::size_t>(state.range(0)), 12, 5);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            stats::agglomerate(data, stats::Linkage::Average));
}
BENCHMARK(BM_AgglomerativeLinkage)
    ->Arg(77)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);

void
BM_EncodeDecodeRoundTrip(benchmark::State &state)
{
    const isa::Instruction in{isa::Opcode::Addi, 5, 6, 0, -1234};
    for (auto _ : state)
        benchmark::DoNotOptimize(isa::decode(isa::encode(in)));
}
BENCHMARK(BM_EncodeDecodeRoundTrip);

/** Best-of-3 wall-clock seconds of one invocation of fn. */
template <typename Fn>
double
wallSeconds(Fn &&fn, int reps = 3)
{
    double best = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const double dt = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        best = std::min(best, dt);
    }
    return best;
}

struct SpeedupRow
{
    std::string stage;
    std::vector<unsigned> threads;
    std::vector<double> seconds;
    bool deterministic = true; ///< parallel output bitwise equals serial
};

/**
 * Serial-vs-parallel wall-clock table for the pooled stats stages. Each
 * stage is also cross-checked for bitwise equality between the serial and
 * every parallel run — the determinism guarantee the engine is built on.
 */
std::vector<SpeedupRow>
measureSpeedups()
{
    const std::vector<unsigned> counts = {1, 2, 4};
    std::vector<SpeedupRow> rows;

    {
        SpeedupRow row;
        row.stage = "kmeans_restarts";
        const auto data = randomMatrix(3000, 16, 2);
        stats::KMeans::Options opts;
        opts.k = 64;
        opts.restarts = 8;
        opts.max_iterations = 12;
        opts.threads = 1;
        const auto serial = stats::KMeans::run(data, opts);
        for (unsigned t : counts) {
            opts.threads = t;
            stats::KMeansResult out;
            row.threads.push_back(t);
            row.seconds.push_back(wallSeconds(
                [&]() { out = stats::KMeans::run(data, opts); }));
            row.deterministic = row.deterministic &&
                out.assignment == serial.assignment &&
                out.bic == serial.bic &&
                out.centers.maxAbsDiff(serial.centers) == 0.0;
        }
        rows.push_back(std::move(row));
    }

    {
        SpeedupRow row;
        row.stage = "ga_fitness";
        const auto phases = randomMatrix(100, 69, 3);
        const ga::FeatureSelector selector(phases);
        ga::GaOptions opts;
        opts.target_count = 12;
        opts.max_generations = 4;
        opts.patience = 4;
        opts.threads = 1;
        const auto serial = selector.select(opts);
        for (unsigned t : counts) {
            opts.threads = t;
            ga::GaResult out;
            row.threads.push_back(t);
            row.seconds.push_back(
                wallSeconds([&]() { out = selector.select(opts); }));
            row.deterministic = row.deterministic &&
                out.selected == serial.selected &&
                out.fitness == serial.fitness;
        }
        rows.push_back(std::move(row));
    }

    {
        SpeedupRow row;
        row.stage = "pca_covariance";
        const auto data = randomMatrix(20000, 69, 5);
        const auto serial = stats::covarianceMatrix(data, 1);
        for (unsigned t : counts) {
            stats::Matrix out;
            row.threads.push_back(t);
            row.seconds.push_back(wallSeconds(
                [&]() { out = stats::covarianceMatrix(data, t); }));
            row.deterministic =
                row.deterministic && out.maxAbsDiff(serial) == 0.0;
        }
        rows.push_back(std::move(row));
    }

    return rows;
}

void
emitSpeedupTable()
{
    const unsigned hw = std::thread::hardware_concurrency();
    const bool degenerate = hw <= 1;
    const auto rows = measureSpeedups();

    std::printf("\nparallel stats engine, serial vs parallel "
                "(hardware threads: %u)\n",
                hw);
    if (degenerate)
        std::printf("WARNING: single-hardware-thread machine — speedups "
                    "are meaningless here (degenerate_parallel_env)\n");
    std::printf("%-16s %8s %12s %10s %14s\n", "stage", "threads",
                "seconds", "speedup", "deterministic");
    for (const SpeedupRow &row : rows)
        for (std::size_t i = 0; i < row.threads.size(); ++i)
            std::printf("%-16s %8u %12.4f %9.2fx %14s\n", row.stage.c_str(),
                        row.threads[i], row.seconds[i],
                        row.seconds[0] / row.seconds[i],
                        row.deterministic ? "yes" : "NO");

    const std::string path =
        micabench::outputDir() + "/BENCH_parallel_speedup.json";
    std::ofstream out(path);
    out << "{\n  \"benchmark\": \"parallel_speedup\",\n"
        << "  \"hardware_threads\": " << hw << ",\n"
        // One hardware thread cannot demonstrate parallel speedup; flag
        // the run so ~1.0x rows are read as environment, not regression.
        << "  \"degenerate_parallel_env\": "
        << (degenerate ? "true" : "false") << ",\n  \"stages\": [\n";
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const SpeedupRow &row = rows[r];
        out << "    {\"stage\": \"" << row.stage << "\", \"threads\": [";
        for (std::size_t i = 0; i < row.threads.size(); ++i)
            out << (i ? ", " : "") << row.threads[i];
        out << "], \"seconds\": [";
        for (std::size_t i = 0; i < row.seconds.size(); ++i) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.6f", row.seconds[i]);
            out << (i ? ", " : "") << buf;
        }
        out << "], \"speedup\": [";
        for (std::size_t i = 0; i < row.seconds.size(); ++i) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.3f",
                          row.seconds[0] / row.seconds[i]);
            out << (i ? ", " : "") << buf;
        }
        out << "], \"deterministic\": "
            << (row.deterministic ? "true" : "false") << "}"
            << (r + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", path.c_str());
}

/**
 * Tracing-overhead measurement: the full mini-pipeline untraced vs under
 * an active TraceSession (spans, counters and the pipeline observer all
 * live), best of 3 each, plus a bitwise cross-check that tracing did not
 * perturb the results. Also exports the traced run's Chrome trace.
 */
void
emitTracingOverhead()
{
    core::ExperimentConfig cfg;
    cfg.interval_instructions = 2000;
    cfg.interval_scale = 0.02;
    cfg.samples_per_benchmark = 20;
    cfg.kmeans_k = 24;
    cfg.kmeans_restarts = 2;
    cfg.num_prominent = 12;
    cfg.cache_dir.clear(); // measure real work, not cache loads
    cfg.threads = 0;

    core::ExperimentOutputs untraced_out;
    const double untraced_s = wallSeconds(
        [&]() { untraced_out = core::runFullExperiment(cfg); });

    // Activate a session manually (instead of cfg.trace_path) so one
    // session spans all three traced repetitions and can be inspected.
    const auto session = obs::TraceSession::create();
    core::ExperimentOutputs traced_out;
    session->activate();
    const double traced_s = wallSeconds(
        [&]() { traced_out = core::runFullExperiment(cfg); });
    session->deactivate();

    const bool deterministic =
        traced_out.comparison.coverage == untraced_out.comparison.coverage &&
        traced_out.comparison.uniqueness ==
            untraced_out.comparison.uniqueness &&
        traced_out.analysis.clustering.assignment ==
            untraced_out.analysis.clustering.assignment &&
        traced_out.analysis.clustering.bic ==
            untraced_out.analysis.clustering.bic;

    const std::size_t num_spans = session->spans().size();
    const double overhead =
        untraced_s > 0.0 ? traced_s / untraced_s - 1.0 : 0.0;
    std::printf("\ntracing overhead (full mini-pipeline, best of 3)\n");
    std::printf("%-12s %12s\n", "mode", "seconds");
    std::printf("%-12s %12.4f\n", "untraced", untraced_s);
    std::printf("%-12s %12.4f\n", "traced", traced_s);
    std::printf("overhead: %.2f%%  spans recorded: %zu  deterministic: %s\n",
                overhead * 100.0, num_spans, deterministic ? "yes" : "NO");

    const std::string dir = micabench::outputDir();
    session->writeChromeTrace(dir + "/BENCH_pipeline_trace.json");
    session->writeMetrics(dir + "/BENCH_pipeline_trace.metrics.json");
    session->clearRecords();

    const std::string path = dir + "/BENCH_tracing_overhead.json";
    std::ofstream out(path);
    char buf[64];
    out << "{\n  \"benchmark\": \"tracing_overhead\",\n";
    std::snprintf(buf, sizeof(buf), "%.6f", untraced_s);
    out << "  \"untraced_seconds\": " << buf << ",\n";
    std::snprintf(buf, sizeof(buf), "%.6f", traced_s);
    out << "  \"traced_seconds\": " << buf << ",\n";
    std::snprintf(buf, sizeof(buf), "%.4f", overhead);
    out << "  \"overhead_fraction\": " << buf << ",\n"
        << "  \"spans_recorded\": " << num_spans << ",\n"
        << "  \"deterministic\": " << (deterministic ? "true" : "false")
        << "\n}\n";
    std::printf("wrote %s\n", path.c_str());
}

/**
 * Well-separated gaussian blobs: `true_k` spread centers with small
 * per-point noise. Separated clusters are where triangle-inequality
 * pruning shines, which is also the regime the phase-analysis pipeline
 * operates in (distinct program phases, not isotropic noise).
 */
stats::Matrix
clusteredMatrix(std::size_t rows, std::size_t cols, std::size_t true_k,
                std::uint64_t seed)
{
    stats::Rng rng(seed);
    stats::Matrix centers(true_k, cols);
    for (std::size_t c = 0; c < true_k; ++c)
        for (std::size_t j = 0; j < cols; ++j)
            centers(c, j) = 20.0 * rng.nextGaussian();
    stats::Matrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t c =
            static_cast<std::size_t>(rng.nextBelow(true_k));
        for (std::size_t j = 0; j < cols; ++j)
            m(r, j) = centers(c, j) + 0.5 * rng.nextGaussian();
    }
    return m;
}

/**
 * Naive-vs-pruned k-means comparison plus the GA fitness-memoization
 * rates, written to BENCH_kmeans_speedup.json. The bitwise cross-check is
 * the contract (`stats/distance.hh`): pruning must only skip work, never
 * change a single output bit.
 */
void
emitKMeansPruning()
{
    const auto data = clusteredMatrix(8000, 16, 64, 42);
    stats::KMeans::Options opts;
    opts.k = 64;
    opts.restarts = 2;
    opts.max_iterations = 30;
    opts.threads = 1;

    opts.pruning = false;
    stats::KMeansResult naive;
    const double naive_s =
        wallSeconds([&]() { naive = stats::KMeans::run(data, opts); });

    opts.pruning = true;
    stats::KMeansResult pruned;
    const double pruned_s =
        wallSeconds([&]() { pruned = stats::KMeans::run(data, opts); });

    const bool identical = pruned.assignment == naive.assignment &&
                           pruned.sizes == naive.sizes &&
                           pruned.inertia == naive.inertia &&
                           pruned.bic == naive.bic &&
                           pruned.centers.maxAbsDiff(naive.centers) == 0.0;
    const double total = static_cast<double>(
        pruned.distance_counters.computed + pruned.distance_counters.pruned);
    const double pruned_fraction =
        total > 0.0
            ? static_cast<double>(pruned.distance_counters.pruned) / total
            : 0.0;
    const double speedup = pruned_s > 0.0 ? naive_s / pruned_s : 0.0;

    // GA memoization: run the selector twice under a trace session. The
    // first run warms the cache from rebred genomes; the second replays
    // the same breeding and must be entirely cache-hot. The counters give
    // the aggregate hit rate; the selections must not move.
    const auto phases = randomMatrix(100, 69, 3);
    const ga::FeatureSelector selector(phases);
    ga::GaOptions ga_opts;
    ga_opts.target_count = 12;
    ga_opts.max_generations = 8;
    ga_opts.patience = 8;
    ga_opts.threads = 1;
    const auto session = obs::TraceSession::create();
    session->activate();
    const auto ga_first = selector.select(ga_opts);
    const auto ga_second = selector.select(ga_opts);
    session->deactivate();
    const auto counters = session->counters();
    const auto counter_at = [&](const char *name) {
        const auto it = counters.find(name);
        return it == counters.end() ? 0.0 : it->second;
    };
    const double ga_hits = counter_at("ga.fitness_cache_hits");
    const double ga_evaluated = counter_at("ga.genomes_evaluated");
    const double ga_hit_rate = ga_hits + ga_evaluated > 0.0
                                   ? ga_hits / (ga_hits + ga_evaluated)
                                   : 0.0;
    const bool ga_identical = ga_first.selected == ga_second.selected &&
                              ga_first.fitness == ga_second.fitness;

    std::printf("\nk-means distance pruning (n=8000 d=16 k=64, best of 3)\n");
    std::printf("%-12s %12s\n", "path", "seconds");
    std::printf("%-12s %12.4f\n", "naive", naive_s);
    std::printf("%-12s %12.4f\n", "pruned", pruned_s);
    std::printf("speedup: %.2fx  distances pruned: %.1f%%  bitwise: %s\n",
                speedup, pruned_fraction * 100.0, identical ? "yes" : "NO");
    std::printf("ga fitness cache: %.0f hits / %.0f evaluations "
                "(hit rate %.1f%%)  selection stable: %s\n",
                ga_hits, ga_evaluated, ga_hit_rate * 100.0,
                ga_identical ? "yes" : "NO");

    const std::string path =
        micabench::outputDir() + "/BENCH_kmeans_speedup.json";
    std::ofstream out(path);
    char buf[64];
    out << "{\n  \"benchmark\": \"kmeans_pruning\",\n";
    std::snprintf(buf, sizeof(buf), "%.6f", naive_s);
    out << "  \"naive_seconds\": " << buf << ",\n";
    std::snprintf(buf, sizeof(buf), "%.6f", pruned_s);
    out << "  \"pruned_seconds\": " << buf << ",\n";
    std::snprintf(buf, sizeof(buf), "%.3f", speedup);
    out << "  \"speedup\": " << buf << ",\n"
        << "  \"distances_computed\": " << pruned.distance_counters.computed
        << ",\n"
        << "  \"distances_pruned\": " << pruned.distance_counters.pruned
        << ",\n";
    std::snprintf(buf, sizeof(buf), "%.4f", pruned_fraction);
    out << "  \"pruned_fraction\": " << buf << ",\n"
        << "  \"bitwise_identical\": " << (identical ? "true" : "false")
        << ",\n  \"ga\": {\n"
        << "    \"fitness_cache_hits\": "
        << static_cast<std::uint64_t>(ga_hits) << ",\n"
        << "    \"genomes_evaluated\": "
        << static_cast<std::uint64_t>(ga_evaluated) << ",\n";
    std::snprintf(buf, sizeof(buf), "%.4f", ga_hit_rate);
    out << "    \"hit_rate\": " << buf << ",\n"
        << "    \"selected_identical\": "
        << (ga_identical ? "true" : "false") << "\n  }\n}\n";
    std::printf("wrote %s\n", path.c_str());
}

/**
 * Frozen-model query cost: re-deriving the phase space from scratch (the
 * full mini-pipeline, caches disabled) versus loading the saved
 * model::PhaseModel and placing one previously unseen benchmark in it
 * (characterize at the frozen interval length, project, assess). The
 * placement must land every interval in a valid frozen cluster; the
 * table records both wall times, the speedup, and the model file size.
 */
void
emitModelQuery()
{
    core::ExperimentConfig cfg;
    cfg.interval_instructions = 2000;
    cfg.interval_scale = 0.02;
    cfg.samples_per_benchmark = 20;
    cfg.kmeans_k = 24;
    cfg.kmeans_restarts = 2;
    cfg.num_prominent = 12;
    cfg.cache_dir.clear(); // cold path: measure real work, not cache loads
    cfg.threads = 0;
    const std::string model_path =
        micabench::outputDir() + "/BENCH_phase_model.bin";
    cfg.model_path = model_path;

    const double train_s =
        wallSeconds([&]() { (void)core::runFullExperiment(cfg); });
    const auto model_bytes = static_cast<std::uint64_t>(
        std::filesystem::file_size(model_path));

    model::PhaseModel model;
    const double load_s =
        wallSeconds([&]() { model = model::PhaseModel::load(model_path); });

    // Place a benchmark the frozen space has to generalize to: gcc at a
    // longer window than the training samples used.
    const workloads::SuiteCatalog catalog;
    const auto *bench = catalog.find("SPECint2006/gcc");
    if (bench == nullptr) {
        std::fprintf(stderr,
                     "emitModelQuery: benchmark SPECint2006/gcc not in "
                     "catalog\n");
        return;
    }
    const std::uint32_t num_intervals = model.samples_per_benchmark;
    bool placed = true;
    model::WorkloadAssessment assessment;
    const double project_s = wallSeconds([&]() {
        const auto vectors = core::characterizeProgram(
            bench->build(0), model.interval_instructions, num_intervals);
        stats::Matrix data(0, 0);
        for (const auto &v : vectors)
            data.appendRow(v);
        const model::Projection proj = model.projectBenchmark(data);
        for (std::size_t c : proj.assignment)
            placed = placed && c < model.numClusters();
        assessment = model.assessWorkload(proj);
    });

    const double query_s = load_s + project_s;
    const double speedup = query_s > 0.0 ? train_s / query_s : 0.0;
    std::printf("\nfrozen model query vs cold pipeline (best of 3)\n");
    std::printf("%-24s %12s\n", "path", "seconds");
    std::printf("%-24s %12.4f\n", "cold_pipeline", train_s);
    std::printf("%-24s %12.4f\n", "model_load", load_s);
    std::printf("%-24s %12.4f\n", "characterize+project", project_s);
    std::printf("speedup: %.1fx  model file: %llu bytes  "
                "placement valid: %s (%zu rows, %zu clusters covered)\n",
                speedup, static_cast<unsigned long long>(model_bytes),
                placed ? "yes" : "NO", assessment.rows,
                assessment.clusters_covered);

    const std::string path =
        micabench::outputDir() + "/BENCH_model_query.json";
    std::ofstream out(path);
    char buf[64];
    out << "{\n  \"benchmark\": \"model_query\",\n";
    std::snprintf(buf, sizeof(buf), "%.6f", train_s);
    out << "  \"cold_pipeline_seconds\": " << buf << ",\n";
    std::snprintf(buf, sizeof(buf), "%.6f", load_s);
    out << "  \"model_load_seconds\": " << buf << ",\n";
    std::snprintf(buf, sizeof(buf), "%.6f", project_s);
    out << "  \"project_seconds\": " << buf << ",\n";
    std::snprintf(buf, sizeof(buf), "%.3f", speedup);
    out << "  \"speedup\": " << buf << ",\n"
        << "  \"model_bytes\": " << model_bytes << ",\n"
        << "  \"rows_projected\": " << assessment.rows << ",\n"
        << "  \"clusters_covered\": " << assessment.clusters_covered
        << ",\n"
        << "  \"placement_valid\": " << (placed ? "true" : "false")
        << "\n}\n";
    std::printf("wrote %s\n", path.c_str());
}

/** Bitwise equality of two projections (reduced, assignment, dist2). */
bool
projectionsIdentical(const model::Projection &a, const model::Projection &b)
{
    return a.assignment == b.assignment &&
           a.reduced.rows() == b.reduced.rows() &&
           a.reduced.cols() == b.reduced.cols() &&
           std::memcmp(a.reduced.data().data(), b.reduced.data().data(),
                       a.reduced.data().size() * sizeof(double)) == 0 &&
           a.dist2.size() == b.dist2.size() &&
           std::memcmp(a.dist2.data(), b.dist2.data(),
                       a.dist2.size() * sizeof(double)) == 0;
}

/**
 * Serving-path table (docs/SERVING.md): train a mini model once, then
 * measure (a) copy-load vs mmap-view open time on both the packed and the
 * aligned file layout, and (b) placeBatch throughput across batch sizes
 * and load paths on a synthesized interval stream. Every timed
 * configuration is also cross-checked bitwise against the unfused
 * projectBenchmark oracle (and a sampled projectInterval pass); the table
 * reports a single bitwise_identical flag CI hard-gates on.
 */
void
emitModelServe()
{
    core::ExperimentConfig cfg;
    cfg.interval_instructions = 2000;
    cfg.interval_scale = 0.02;
    cfg.samples_per_benchmark = 20;
    cfg.kmeans_k = 24;
    cfg.kmeans_restarts = 2;
    cfg.num_prominent = 12;
    cfg.cache_dir.clear();
    cfg.threads = 0;
    const std::string packed_path =
        micabench::outputDir() + "/BENCH_serve_model.bin";
    cfg.model_path = packed_path;
    (void)core::runFullExperiment(cfg);

    const model::PhaseModel model = model::PhaseModel::load(packed_path);
    const std::string aligned_path =
        micabench::outputDir() + "/BENCH_serve_model_aligned.bin";
    model::SaveOptions save_opts;
    save_opts.align_sections = true;
    model.save(aligned_path, save_opts);

    // Load-path comparison on the aligned layout (the serving deployment
    // shape); the packed file is also opened to record its fallback.
    const double copy_load_s = wallSeconds(
        [&]() { (void)model::PhaseModel::load(aligned_path); });
    const double view_open_s = wallSeconds(
        [&]() { (void)model::PhaseModelView::open(aligned_path); });
    const model::PhaseModelView aligned_view =
        model::PhaseModelView::open(aligned_path);
    const model::PhaseModelView packed_view =
        model::PhaseModelView::open(packed_path);

    // Synthesize a serving stream around the training distribution:
    // prominent-phase representatives perturbed by a fraction of the
    // per-column stddev (deterministic seed).
    const std::size_t n = 8192;
    const std::size_t p = model.columns();
    stats::Rng rng(2026);
    stats::Matrix rows(n, p);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t c = 0; c < p; ++c) {
            const double base =
                model.prominent_raw.rows() > 0
                    ? model.prominent_raw.at(i % model.prominent_raw.rows(),
                                             c)
                    : model.norm_mean[c];
            rows.at(i, c) =
                base + 0.25 * model.norm_stddev[c] * rng.nextGaussian();
        }

    // Oracle: the unfused per-matrix-op path the training pipeline used.
    const model::Projection oracle = model.projectBenchmark(rows);

    bool bitwise = true;
    // Fused kernel across thread counts and block sizes, both load paths.
    for (unsigned threads : {1u, 2u, 4u})
        for (std::size_t block : {64u, 512u, 4096u}) {
            stats::ProjectOptions popts;
            popts.threads = threads;
            popts.block_rows = block;
            bitwise = bitwise &&
                      projectionsIdentical(oracle,
                                           model.placeBatch(rows, popts));
            bitwise = bitwise &&
                      projectionsIdentical(
                          oracle, aligned_view.placeBatch(rows, popts));
            bitwise = bitwise &&
                      projectionsIdentical(
                          oracle, packed_view.placeBatch(rows, popts));
        }
    // Row-at-a-time spot check: every 97th row through projectInterval.
    for (std::size_t i = 0; i < n; i += 97) {
        const auto placement = model.projectInterval(rows.row(i));
        bitwise = bitwise && placement.cluster == oracle.assignment[i] &&
                  std::memcmp(&placement.dist2, &oracle.dist2[i],
                              sizeof(double)) == 0;
    }

    // Throughput sweep: rows/s of one placeBatch pass per batch size, fed
    // in pre-sliced chunks like the serving loop does.
    struct SweepRow
    {
        const char *path;
        std::size_t batch;
        double seconds;
        double rows_per_sec;
    };
    std::vector<SweepRow> sweep;
    const std::vector<std::size_t> batches = {64, 512, 4096};
    std::vector<stats::Matrix> chunks;
    for (std::size_t batch : batches) {
        chunks.clear();
        for (std::size_t begin = 0; begin < n; begin += batch) {
            const std::size_t end = std::min(begin + batch, n);
            stats::Matrix chunk(end - begin, p);
            for (std::size_t r = begin; r < end; ++r)
                for (std::size_t c = 0; c < p; ++c)
                    chunk.at(r - begin, c) = rows.at(r, c);
            chunks.push_back(std::move(chunk));
        }
        stats::ProjectOptions popts;
        popts.threads = 0;
        popts.block_rows = 64;
        for (int which = 0; which < 2; ++which) {
            const double s = wallSeconds([&]() {
                for (const stats::Matrix &chunk : chunks) {
                    const model::Projection proj =
                        which == 0 ? model.placeBatch(chunk, popts)
                                   : aligned_view.placeBatch(chunk, popts);
                    benchmark::DoNotOptimize(proj.assignment.data());
                }
            });
            sweep.push_back({which == 0 ? "copy" : "mmap", batch, s,
                             s > 0.0 ? static_cast<double>(n) / s : 0.0});
        }
    }

    std::printf("\nmodel serving: load paths + batched placement "
                "(best of 3, %zu rows)\n", n);
    std::printf("copy load %.4fs, mmap open %.4fs (zero-copy aligned: %s, "
                "packed: %s), bitwise identical: %s\n",
                copy_load_s, view_open_s,
                aligned_view.zeroCopy() ? "yes" : "no",
                packed_view.zeroCopy() ? "yes" : "no",
                bitwise ? "yes" : "NO");
    std::printf("%-6s %8s %10s %14s\n", "path", "batch", "seconds",
                "rows/sec");
    for (const SweepRow &row : sweep)
        std::printf("%-6s %8zu %10.4f %14.0f\n", row.path, row.batch,
                    row.seconds, row.rows_per_sec);

    const std::string path =
        micabench::outputDir() + "/BENCH_model_serve.json";
    std::ofstream out(path);
    char buf[64];
    out << "{\n  \"benchmark\": \"model_serve\",\n"
        << "  \"rows\": " << n << ",\n";
    std::snprintf(buf, sizeof(buf), "%.6f", copy_load_s);
    out << "  \"copy_load_seconds\": " << buf << ",\n";
    std::snprintf(buf, sizeof(buf), "%.6f", view_open_s);
    out << "  \"mmap_open_seconds\": " << buf << ",\n"
        << "  \"zero_copy_aligned\": "
        << (aligned_view.zeroCopy() ? "true" : "false") << ",\n"
        << "  \"zero_copy_packed\": "
        << (packed_view.zeroCopy() ? "true" : "false") << ",\n"
        << "  \"bitwise_identical\": " << (bitwise ? "true" : "false")
        << ",\n  \"sweep\": [\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const SweepRow &row = sweep[i];
        out << "    {\"path\": \"" << row.path
            << "\", \"batch\": " << row.batch << ", ";
        std::snprintf(buf, sizeof(buf), "%.6f", row.seconds);
        out << "\"seconds\": " << buf << ", ";
        std::snprintf(buf, sizeof(buf), "%.0f", row.rows_per_sec);
        out << "\"rows_per_sec\": " << buf << "}"
            << (i + 1 < sweep.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", path.c_str());
}

/**
 * Live-update table (docs/MODEL.md "Deltas & drift"): train the mini
 * model once, then measure (a) ModelUpdater ingest throughput on a
 * synthesized interval stream, (b) the dedup-drop fraction when the
 * redundancy radius is set to the stream's median center distance, (c)
 * the opt-in refinement pass — reported max_center_drift versus its
 * threshold, with the certified-bound property (actual movement <=
 * reported bound per center) checked exactly — and (d) LiveModel
 * hot-swap latency for a full load-and-publish cycle. The table also
 * re-checks the frozen-path contract after a delta append: placements
 * through both loaders at several thread counts must stay bitwise
 * identical to the pre-delta oracle (frozen_path_identical — CI
 * hard-gates on it).
 */
void
emitModelUpdate()
{
    core::ExperimentConfig cfg;
    cfg.interval_instructions = 2000;
    cfg.interval_scale = 0.02;
    cfg.samples_per_benchmark = 20;
    cfg.kmeans_k = 24;
    cfg.kmeans_restarts = 2;
    cfg.num_prominent = 12;
    cfg.cache_dir.clear();
    cfg.threads = 0;
    const std::string trained_path =
        micabench::outputDir() + "/BENCH_update_model.bin";
    cfg.model_path = trained_path;
    (void)core::runFullExperiment(cfg);

    // Deploy shape: aligned layout, opened through the unified API.
    const model::PhaseModel trained =
        model::PhaseModel::load(trained_path);
    model::SaveOptions aligned;
    aligned.align_sections = true;
    const std::string live_path =
        micabench::outputDir() + "/BENCH_update_model_aligned.bin";
    trained.save(live_path, aligned);
    const auto reader = model::open(live_path, {model::OpenMode::Copy});

    // Same synthesized stream recipe as the serving table.
    const std::size_t n = 8192;
    const std::size_t p = trained.columns();
    stats::Rng rng(2026);
    stats::Matrix rows(n, p);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t c = 0; c < p; ++c) {
            const double base =
                trained.prominent_raw.rows() > 0
                    ? trained.prominent_raw.at(
                          i % trained.prominent_raw.rows(), c)
                    : trained.norm_mean[c];
            rows.at(i, c) = base + 0.25 * trained.norm_stddev[c] *
                                       rng.nextGaussian();
        }

    // Frozen placements before any delta traffic: the oracle every
    // post-append configuration must reproduce bit-for-bit.
    const model::Projection oracle = reader->placeBatch(rows);

    // Redundancy radius = median center distance of the stream, so the
    // drop fraction lands mid-range instead of degenerating to 0 or 1.
    std::vector<double> dists(oracle.dist2.size());
    for (std::size_t i = 0; i < dists.size(); ++i)
        dists[i] = std::sqrt(oracle.dist2[i]);
    std::sort(dists.begin(), dists.end());
    const double dedup_threshold = dists[dists.size() / 2];

    model::UpdateOptions observe_opts;
    observe_opts.dedup_threshold = dedup_threshold;
    const double ingest_s = wallSeconds([&]() {
        model::ModelUpdater u(*reader, observe_opts);
        benchmark::DoNotOptimize(u.ingest(rows).accepted);
    });
    const double ingest_rows_per_sec =
        ingest_s > 0.0 ? static_cast<double>(n) / ingest_s : 0.0;

    // Accounting run (outside the timer) feeding the appended delta.
    model::ModelUpdater updater(*reader, observe_opts);
    const model::IngestBatch batch = updater.ingest(rows);
    const double drop_fraction =
        static_cast<double>(batch.deduped) / static_cast<double>(n);
    model::appendDelta(live_path, updater.delta(), aligned);

    // Frozen-path contract after the append: both loaders, several
    // thread counts, all bitwise against the pre-delta oracle.
    const auto copy_reader =
        model::open(live_path, {model::OpenMode::Copy});
    const auto mmap_reader =
        model::open(live_path, {model::OpenMode::Mmap});
    bool frozen_identical =
        copy_reader->meta().deltas.size() == 1 &&
        mmap_reader->meta().deltas.size() == 1;
    for (unsigned threads : {1u, 2u, 4u}) {
        stats::ProjectOptions popts;
        popts.threads = threads;
        popts.block_rows = 64;
        frozen_identical =
            frozen_identical &&
            projectionsIdentical(oracle,
                                 copy_reader->placeBatch(rows, popts)) &&
            projectionsIdentical(oracle,
                                 mmap_reader->placeBatch(rows, popts));
    }

    // Refinement pass: bounded mini-batch step over the same stream.
    model::UpdateOptions refine_opts = observe_opts;
    refine_opts.refine = true;
    model::ModelUpdater refiner(*reader, refine_opts);
    (void)refiner.ingest(rows);
    const model::ModelDelta refined = refiner.delta(2);
    bool drift_bounded = refined.refined;
    for (std::size_t c = 0; c < trained.numClusters(); ++c) {
        const double moved = stats::euclideanDistance(
            refined.refined_centers.row(c), trained.centers.row(c));
        drift_bounded =
            drift_bounded && moved <= refined.center_drift[c] + 1e-12;
    }

    // Hot-swap latency: one full open-validate-publish cycle.
    model::LiveModel live;
    const double swap_s = wallSeconds([&]() {
        (void)live.load(live_path, {model::OpenMode::Mmap});
    });

    std::printf("\nlive model update: ingest, dedup, drift, hot-swap "
                "(best of 3, %zu rows)\n", n);
    std::printf("ingest %.4fs (%.0f rows/sec), dedup radius %.4f drops "
                "%.1f%% (%llu of %zu)\n",
                ingest_s, ingest_rows_per_sec, dedup_threshold,
                drop_fraction * 100.0,
                static_cast<unsigned long long>(batch.deduped), n);
    std::printf("refined drift max %.4f vs threshold %.2f (bounded: %s, "
                "retrain: %s)\n",
                refined.max_center_drift, refined.drift_threshold,
                drift_bounded ? "yes" : "NO",
                refined.retrain_recommended ? "recommended" : "no");
    std::printf("hot-swap %.4fs/load (generation %llu), frozen path "
                "identical: %s\n",
                swap_s,
                static_cast<unsigned long long>(live.generation()),
                frozen_identical ? "yes" : "NO");

    const std::string path =
        micabench::outputDir() + "/BENCH_model_update.json";
    std::ofstream out(path);
    char buf[64];
    out << "{\n  \"benchmark\": \"model_update\",\n"
        << "  \"rows\": " << n << ",\n";
    std::snprintf(buf, sizeof(buf), "%.6f", ingest_s);
    out << "  \"ingest_seconds\": " << buf << ",\n";
    std::snprintf(buf, sizeof(buf), "%.0f", ingest_rows_per_sec);
    out << "  \"ingest_rows_per_sec\": " << buf << ",\n";
    std::snprintf(buf, sizeof(buf), "%.6f", dedup_threshold);
    out << "  \"dedup_threshold\": " << buf << ",\n";
    std::snprintf(buf, sizeof(buf), "%.4f", drop_fraction);
    out << "  \"dedup_dropped_fraction\": " << buf << ",\n"
        << "  \"accepted_rows\": " << batch.accepted << ",\n"
        << "  \"deduped_rows\": " << batch.deduped << ",\n";
    std::snprintf(buf, sizeof(buf), "%.6f", refined.max_center_drift);
    out << "  \"refined_max_center_drift\": " << buf << ",\n";
    std::snprintf(buf, sizeof(buf), "%.2f", refined.drift_threshold);
    out << "  \"drift_threshold\": " << buf << ",\n"
        << "  \"drift_bounded\": " << (drift_bounded ? "true" : "false")
        << ",\n"
        << "  \"retrain_recommended\": "
        << (refined.retrain_recommended ? "true" : "false") << ",\n";
    std::snprintf(buf, sizeof(buf), "%.6f", swap_s);
    out << "  \"hot_swap_seconds\": " << buf << ",\n"
        << "  \"frozen_path_identical\": "
        << (frozen_identical ? "true" : "false") << "\n}\n";
    std::printf("wrote %s\n", path.c_str());
}

/** One static-vs-dynamic feature correlation, across all workloads. */
struct CorrPair
{
    std::string static_name;
    std::string dynamic_name;
    double spearman = 0.0;
    double pearson = 0.0;
};

struct CorrGroup
{
    std::string name;
    std::vector<CorrPair> pairs;
    double mean_spearman = 0.0;
};

/** Correlate column pairs across workloads and summarize per group. */
CorrGroup
correlateGroup(std::string name,
               const std::vector<std::array<std::string, 2>> &labels,
               const std::vector<std::vector<double>> &static_cols,
               const std::vector<std::vector<double>> &dynamic_cols)
{
    CorrGroup group;
    group.name = std::move(name);
    double sum = 0.0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        CorrPair pair;
        pair.static_name = labels[i][0];
        pair.dynamic_name = labels[i][1];
        pair.spearman = stats::spearman(static_cols[i], dynamic_cols[i]);
        pair.pearson = stats::pearson(static_cols[i], dynamic_cols[i]);
        sum += pair.spearman;
        group.pairs.push_back(std::move(pair));
    }
    if (!group.pairs.empty())
        group.mean_spearman = sum / static_cast<double>(group.pairs.size());
    return group;
}

/**
 * Static-analysis table: catalog-wide verify + StaticFeaturesV2 wall time
 * (best of 3), the diagnostics histogram over every verifier check class,
 * a bitwise determinism cross-check of the feature vectors across 1/2/4
 * worker threads, and the static-vs-dynamic validation — Spearman and
 * Pearson correlation across all catalog workloads for three feature
 * groups (instruction mix, stride mix, ILP estimate). The dynamic side of
 * each pair is the per-workload mean over profiled intervals.
 */
void
emitStaticAnalysis()
{
    const workloads::SuiteCatalog catalog;
    std::vector<isa::Program> programs;
    for (const auto &bench : catalog.benchmarks())
        for (std::uint32_t input = 0; input < bench.num_inputs; ++input)
            programs.push_back(bench.build(input));

    // Catalog-wide analysis wall time plus the diagnostics histogram.
    analysis::Options vopts;
    vopts.allow_nonterminating = true; // generated workloads loop by design
    std::array<std::size_t, analysis::kNumChecks> histogram{};
    std::size_t diagnostics_total = 0;
    std::size_t transfers_total = 0;
    const double analyze_s = wallSeconds([&]() {
        std::array<std::size_t, analysis::kNumChecks> h{};
        std::size_t diags = 0;
        std::size_t transfers = 0;
        for (const isa::Program &program : programs) {
            const analysis::Report report = analysis::verify(program, vopts);
            for (const analysis::Diagnostic &d : report.diagnostics) {
                ++h[static_cast<std::size_t>(d.check)];
                ++diags;
            }
            transfers +=
                analysis::staticFeaturesV2(program).analysis_transfers;
        }
        histogram = h;
        diagnostics_total = diags;
        transfers_total = transfers;
    });

    // Reference features, then the determinism cross-check: recompute the
    // whole catalog with work strided across 2 and 4 threads into
    // preallocated slots and require bitwise-identical vectors.
    std::vector<analysis::StaticFeaturesV2> feats;
    feats.reserve(programs.size());
    for (const isa::Program &program : programs)
        feats.push_back(analysis::staticFeaturesV2(program));
    std::vector<std::vector<double>> reference;
    reference.reserve(feats.size());
    for (const analysis::StaticFeaturesV2 &f : feats)
        reference.push_back(f.toVector());

    const auto computeAll = [&](unsigned threads) {
        std::vector<std::vector<double>> slots(programs.size());
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back([&, t]() {
                for (std::size_t i = t; i < programs.size(); i += threads)
                    slots[i] =
                        analysis::staticFeaturesV2(programs[i]).toVector();
            });
        for (std::thread &th : pool)
            th.join();
        return slots;
    };
    const bool deterministic =
        computeAll(1) == reference && computeAll(2) == reference &&
        computeAll(4) == reference;

    // Dynamic side: per-workload mean characteristic vector over profiled
    // intervals (same interval length as the tracing/model tables).
    std::vector<std::array<double, metrics::kNumCharacteristics>> dynamic(
        programs.size());
    for (std::size_t w = 0; w < programs.size(); ++w) {
        const auto vectors = core::characterizeProgram(programs[w], 2000, 20);
        std::array<double, metrics::kNumCharacteristics> mean{};
        for (const auto &v : vectors)
            for (std::size_t i = 0; i < metrics::kNumCharacteristics; ++i)
                mean[i] += v[i];
        if (!vectors.empty())
            for (double &x : mean)
                x /= static_cast<double>(vectors.size());
        dynamic[w] = mean;
    }

    const auto dynamicCol = [&](std::size_t metric) {
        std::vector<double> col(programs.size());
        for (std::size_t w = 0; w < programs.size(); ++w)
            col[w] = dynamic[w][metric];
        return col;
    };
    const auto dynName = [](std::size_t metric) {
        return std::string(metrics::metricInfo(metric).name);
    };

    std::vector<CorrGroup> groups;

    // Instruction mix: the 20 loop-weighted static bins against the 20
    // dynamic mix fractions, bin for bin (same classification logic).
    {
        const auto v2_names = analysis::StaticFeaturesV2::featureNames();
        const std::size_t wmix_at = analysis::StaticFeatures::featureNames()
                                        .size();
        std::vector<std::array<std::string, 2>> labels;
        std::vector<std::vector<double>> scols, dcols;
        for (std::size_t bin = 0; bin < analysis::kNumMixBins; ++bin) {
            labels.push_back({v2_names[wmix_at + bin], dynName(bin)});
            std::vector<double> col(programs.size());
            for (std::size_t w = 0; w < programs.size(); ++w)
                col[w] = feats[w].mix[bin];
            scols.push_back(std::move(col));
            dcols.push_back(dynamicCol(bin));
        }
        groups.push_back(
            correlateGroup("instruction_mix", labels, scols, dcols));
    }

    // Stride mix: cumulative static stride-class fractions against the
    // dynamic local-stride CDFs at the matching byte cutoffs. Invariant
    // accesses have stride 0; unit strides are <= 8 bytes; "small" covers
    // everything up to 64 bytes.
    {
        const auto cdf = [](const std::array<double,
                                             analysis::kV2StrideClasses> &m,
                            std::size_t upto) {
            double acc = 0.0;
            for (std::size_t i = 0; i <= upto; ++i)
                acc += m[i];
            return acc;
        };
        std::vector<std::array<std::string, 2>> labels;
        std::vector<std::vector<double>> scols, dcols;
        const struct
        {
            const char *static_name;
            bool store;
            std::size_t upto;
            std::size_t metric;
        } rows[] = {
            {"static_load_cdf_0b", false, 0, metrics::midx::LocalLoadStride0},
            {"static_load_cdf_8b", false, 1, metrics::midx::LocalLoadStride8},
            {"static_load_cdf_64b", false, 2,
             metrics::midx::LocalLoadStride64},
            {"static_store_cdf_0b", true, 0,
             metrics::midx::LocalStoreStride0},
            {"static_store_cdf_8b", true, 1,
             metrics::midx::LocalStoreStride8},
            {"static_store_cdf_64b", true, 2,
             metrics::midx::LocalStoreStride64},
        };
        for (const auto &row : rows) {
            labels.push_back({row.static_name, dynName(row.metric)});
            std::vector<double> col(programs.size());
            for (std::size_t w = 0; w < programs.size(); ++w)
                col[w] = cdf(row.store ? feats[w].store_stride_mix
                                       : feats[w].load_stride_mix,
                             row.upto);
            scols.push_back(std::move(col));
            dcols.push_back(dynamicCol(row.metric));
        }
        groups.push_back(correlateGroup("stride_mix", labels, scols, dcols));
    }

    // ILP: the dependence-height estimate against each dynamic windowed
    // ILP metric.
    {
        std::vector<std::array<std::string, 2>> labels;
        std::vector<std::vector<double>> scols, dcols;
        std::vector<double> est(programs.size());
        for (std::size_t w = 0; w < programs.size(); ++w)
            est[w] = feats[w].est_ilp;
        for (std::size_t metric = metrics::midx::Ilp32;
             metric <= metrics::midx::Ilp256; ++metric) {
            labels.push_back({"est_ilp", dynName(metric)});
            scols.push_back(est);
            dcols.push_back(dynamicCol(metric));
        }
        groups.push_back(correlateGroup("ilp", labels, scols, dcols));
    }

    std::printf("\nstatic analysis over the catalog (%zu programs, "
                "best of 3)\n",
                programs.size());
    std::printf("analyze: %.4f s  transfers: %zu  diagnostics: %zu  "
                "deterministic(1/2/4 threads): %s\n",
                analyze_s, transfers_total, diagnostics_total,
                deterministic ? "yes" : "NO");
    std::printf("%-18s %6s %14s\n", "group", "pairs", "mean_spearman");
    for (const CorrGroup &g : groups)
        std::printf("%-18s %6zu %14.3f\n", g.name.c_str(), g.pairs.size(),
                    g.mean_spearman);

    const std::string path =
        micabench::outputDir() + "/BENCH_static_analysis.json";
    std::ofstream out(path);
    char buf[64];
    out << "{\n  \"benchmark\": \"static_analysis\",\n"
        << "  \"programs\": " << programs.size() << ",\n";
    std::snprintf(buf, sizeof(buf), "%.6f", analyze_s);
    out << "  \"analyze_seconds\": " << buf << ",\n"
        << "  \"analysis_transfers\": " << transfers_total << ",\n"
        << "  \"deterministic\": " << (deterministic ? "true" : "false")
        << ",\n  \"diagnostics_total\": " << diagnostics_total
        << ",\n  \"diagnostics\": {";
    for (std::size_t c = 0; c < analysis::kNumChecks; ++c)
        out << (c ? ", " : "") << "\""
            << analysis::checkName(static_cast<analysis::Check>(c))
            << "\": " << histogram[c];
    out << "},\n  \"groups\": [\n";
    for (std::size_t g = 0; g < groups.size(); ++g) {
        const CorrGroup &group = groups[g];
        out << "    {\"name\": \"" << group.name << "\", ";
        std::snprintf(buf, sizeof(buf), "%.4f", group.mean_spearman);
        out << "\"mean_spearman\": " << buf << ", \"pairs\": [\n";
        for (std::size_t i = 0; i < group.pairs.size(); ++i) {
            const CorrPair &pair = group.pairs[i];
            out << "      {\"static\": \"" << pair.static_name
                << "\", \"dynamic\": \"" << pair.dynamic_name << "\", ";
            std::snprintf(buf, sizeof(buf), "%.4f", pair.spearman);
            out << "\"spearman\": " << buf << ", ";
            std::snprintf(buf, sizeof(buf), "%.4f", pair.pearson);
            out << "\"pearson\": " << buf << "}"
                << (i + 1 < group.pairs.size() ? "," : "") << "\n";
        }
        out << "    ]}" << (g + 1 < groups.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", path.c_str());
}

/** One scalar-vs-vector measurement of a dispatched stats kernel. */
struct SimdKernelRow
{
    std::string kernel;
    std::string shape;
    double scalar_seconds = 0.0;
    double vector_seconds = 0.0;
    double ops_per_pass = 0.0; ///< kernel invocations per timed pass
    bool bitwise_identical = true;
};

/**
 * SIMD kernel table (docs/PERFORMANCE.md "SIMD kernels"): each dispatched
 * kernel is timed at serving-realistic shapes under the scalar oracle and
 * the best vector level the host supports, every vector output is
 * memcmp'd against the scalar bits (CI hard-gates the aggregate flag),
 * and a STREAM-style bandwidth sweep records the memory-system ceiling
 * the kernels run under at each working-set size.
 */
void
emitSimdKernels()
{
    namespace simd = stats::simd;
    const simd::Level restore = simd::activeLevel();
    const simd::Level best = simd::bestSupportedLevel();
    std::vector<SimdKernelRow> rows;

    // Shared serving-realistic fixtures: p=69 inputs, m=16 components,
    // k=300 centers (the scaling point named in ROADMAP item 1). Point
    // batches are kept modest so the center/loading tables stay cache-
    // resident the way they do in a serving loop — the rows measure the
    // kernels, not DRAM streaming (the bandwidth sweep below covers
    // that axis explicitly).
    const std::size_t p = 69, m = 16, k = 300;
    const auto points = randomMatrix(64, p, 21);
    const auto centers_p = randomMatrix(k, p, 22);
    const auto centers_m = randomMatrix(k, m, 23);

    // Time one pass of `fn` (which fills `out`) at both levels and
    // memcmp the outputs; vector == scalar is the whole contract.
    const auto measure = [&](const char *kernel, const char *shape,
                             double ops, auto &out, auto &&fn) {
        SimdKernelRow row;
        row.kernel = kernel;
        row.shape = shape;
        row.ops_per_pass = ops;
        // Interleaved best-of-7: on a single shared core a steal burst
        // can outlast several back-to-back samples, so consecutive
        // same-level reps would let one burst swallow a 2x kernel
        // difference whole. Alternating levels per rep means any burst
        // inflates both sides and the per-level minima stay comparable.
        auto scalar_out = out;
        row.scalar_seconds = 1e300;
        row.vector_seconds = 1e300;
        for (int rep = 0; rep < 7; ++rep) {
            simd::setLevel(simd::Level::Scalar);
            row.scalar_seconds = std::min(row.scalar_seconds,
                                          wallSeconds(fn, 1));
            if (rep == 0)
                scalar_out = out;
            simd::setLevel(best);
            row.vector_seconds = std::min(row.vector_seconds,
                                          wallSeconds(fn, 1));
            if (rep == 0)
                row.bitwise_identical = out.size() == scalar_out.size() &&
                    std::memcmp(out.data(), scalar_out.data(),
                                out.size() * sizeof(double)) == 0;
        }
        rows.push_back(std::move(row));
    };

    {
        // squaredDistance the way the hot paths consume it: through the
        // fused nearest-center scan (Lloyd assignment in p-space), which
        // pays one dispatch per point and then k direct distance calls.
        // A bare pairwise-call loop would time the indirect-call overhead
        // as much as the kernel.
        std::vector<double> hits(points.rows() * 2);
        const int passes = 64;
        measure("squared_distance",
                "p=69, k=300 scan, 64 points x64",
                static_cast<double>(points.rows() * centers_p.rows()) *
                    passes,
                hits, [&]() {
                    for (int pass = 0; pass < passes; ++pass)
                        for (std::size_t r = 0; r < points.rows(); ++r) {
                            const stats::NearestCenter nc =
                                stats::nearestCenter(points.row(r),
                                                     centers_p);
                            hits[2 * r] = nc.dist2;
                            hits[2 * r + 1] = nc.second_dist2;
                        }
                });
    }
    {
        const auto data = randomMatrix(512, p, 24);
        std::vector<double> norms(data.rows());
        const int passes = 512;
        measure("sum_squares", "p=69, 512 rows x512",
                static_cast<double>(norms.size() * passes), norms, [&]() {
                    for (int pass = 0; pass < passes; ++pass)
                        for (std::size_t r = 0; r < data.rows(); ++r)
                            norms[r] = simd::sumSquares(data.row(r).data(),
                                                        data.cols());
                });
    }
    {
        // The projectOneRow inner loop shape: p accumulations into an
        // m-wide destination row.
        const auto coeffs = randomMatrix(1, p, 25);
        const auto loadings = randomMatrix(p, m, 26);
        // Destination rows are 64-byte-aligned Matrix storage in the
        // product paths; an arbitrarily aligned heap buffer here would
        // measure split-access stalls the serving loop never pays.
        mica::util::AlignedVector<double> dst(m);
        const int passes = 8192;
        measure("axpy", "p=69 rows into m=16",
                static_cast<double>(passes) * static_cast<double>(p), dst,
                [&]() {
                    std::fill(dst.begin(), dst.end(), 0.0);
                    for (int pass = 0; pass < passes; ++pass)
                        for (std::size_t r = 0; r < p; ++r)
                            simd::axpy(coeffs.at(0, r),
                                       loadings.row(r).data(), dst.data(),
                                       m);
                });
    }
    {
        // projectOneRow's exact body as the single fused dispatched
        // kernel: normalize -> zero-skip axpy accumulation -> rescale.
        const auto raw = randomMatrix(1, p, 31);
        const auto loadings = randomMatrix(p, m, 32);
        const auto mean_row = randomMatrix(1, p, 33);
        std::vector<double> sd(p, 1.25), rescale_sd(m, 0.75);
        sd[3] = 0.0; // dead column, as the serving spec can carry
        mica::util::AlignedVector<double> scratch(p);
        mica::util::AlignedVector<double> dst(m); // as Matrix rows are
        const int passes = 8192;
        measure("project_one_row", "p=69 -> m=16, fused",
                static_cast<double>(passes), dst, [&]() {
                    for (int pass = 0; pass < passes; ++pass) {
                        std::fill(dst.begin(), dst.end(), 0.0);
                        simd::projectRow(raw.row(0).data(),
                                         mean_row.row(0).data(), sd.data(),
                                         true, scratch.data(),
                                         loadings.data().data(), p, m,
                                         dst.data(), rescale_sd.data(),
                                         stats::kStddevEpsilon);
                    }
                });
    }
    {
        const auto q = randomMatrix(2048, m, 27);
        std::vector<double> hits(q.rows() * 2);
        const int passes = 8;
        measure("nearest_center_scan", "m=16, k=300, 2048 points x8",
                static_cast<double>(q.rows() * passes), hits, [&]() {
                    for (int pass = 0; pass < passes; ++pass)
                        for (std::size_t r = 0; r < q.rows(); ++r) {
                            const stats::NearestCenter nc =
                                stats::nearestCenter(q.row(r), centers_m);
                            hits[2 * r] = nc.dist2;
                            hits[2 * r + 1] = nc.second_dist2;
                        }
                });
    }

    // End-to-end fused projection (the serving hot path): normalize ->
    // zero-skip axpy -> rescale -> scan, single-threaded so the row
    // measures kernel speed, not the pool.
    double project_rows_n = 0.0;
    {
        const std::size_t n = 4096;
        const auto raw = randomMatrix(n, p, 28);
        const auto loadings = randomMatrix(p, m, 29);
        const auto mean_m = randomMatrix(1, p, 30);
        stats::ProjectionSpec spec;
        spec.normalize_input = true;
        spec.mean = mean_m.row(0);
        std::vector<double> sd(p, 1.25), rescale_sd(m, 0.75);
        sd[3] = 0.0; // keep one dead column in the measured shape
        spec.stddev = sd;
        spec.loadings = loadings.view();
        spec.rescale_sd = rescale_sd;
        spec.centers = centers_m.view();
        stats::ProjectOptions popts;
        popts.threads = 1;
        stats::ProjectedRows out;
        std::vector<double> flat;
        SimdKernelRow row;
        row.kernel = "project_rows";
        row.shape = "n=4096, p=69, m=16, k=300, threads=1";
        row.ops_per_pass = static_cast<double>(n);
        project_rows_n = static_cast<double>(n);
        const auto run = [&]() {
            out = stats::projectRows(spec, raw.view(), popts);
            flat.assign(out.reduced.data().begin(),
                        out.reduced.data().end());
            flat.insert(flat.end(), out.dist2.begin(), out.dist2.end());
            for (const std::size_t a : out.assignment)
                flat.push_back(static_cast<double>(a));
        };
        // Same interleaved sampling as `measure` above.
        std::vector<double> scalar_flat;
        row.scalar_seconds = 1e300;
        row.vector_seconds = 1e300;
        for (int rep = 0; rep < 7; ++rep) {
            simd::setLevel(simd::Level::Scalar);
            row.scalar_seconds = std::min(row.scalar_seconds,
                                          wallSeconds(run, 1));
            if (rep == 0)
                scalar_flat = flat;
            simd::setLevel(best);
            row.vector_seconds = std::min(row.vector_seconds,
                                          wallSeconds(run, 1));
            if (rep == 0)
                row.bitwise_identical = flat.size() == scalar_flat.size() &&
                    std::memcmp(flat.data(), scalar_flat.data(),
                                flat.size() * sizeof(double)) == 0;
        }
        rows.push_back(std::move(row));
    }
    simd::setLevel(restore);

    bool all_identical = true;
    for (const SimdKernelRow &row : rows)
        all_identical = all_identical && row.bitwise_identical;

    std::printf("\nSIMD kernel dispatch: scalar oracle vs %s "
                "(compiled_with_simd: %s)\n",
                simd::levelName(best).data(),
                simd::compiledWithSimd() ? "yes" : "no");
    std::printf("%-20s %-36s %12s %12s %9s %9s\n", "kernel", "shape",
                "scalar_s", "vector_s", "speedup", "bitwise");
    for (const SimdKernelRow &row : rows)
        std::printf("%-20s %-36s %12.4f %12.4f %8.2fx %9s\n",
                    row.kernel.c_str(), row.shape.c_str(),
                    row.scalar_seconds, row.vector_seconds,
                    row.scalar_seconds / row.vector_seconds,
                    row.bitwise_identical ? "yes" : "NO");

    // STREAM sweep: L1-resident through DRAM-resident working sets.
    const std::size_t sweep_bytes[] = {32ul << 10,  128ul << 10,
                                       512ul << 10, 2ul << 20,
                                       8ul << 20,   32ul << 20};
    std::vector<micabench::stream::BandwidthPoint> sweep;
    std::printf("\nSTREAM bandwidth sweep (GB/s)\n");
    std::printf("%14s %10s %10s %10s %10s\n", "working_set", "copy",
                "scale", "add", "triad");
    for (const std::size_t bytes : sweep_bytes) {
        sweep.push_back(micabench::stream::measureBandwidth(bytes));
        const auto &pt = sweep.back();
        std::printf("%13zuK %10.2f %10.2f %10.2f %10.2f\n", bytes >> 10,
                    pt.copy_gbps, pt.scale_gbps, pt.add_gbps,
                    pt.triad_gbps);
    }

    const std::string path =
        micabench::outputDir() + "/BENCH_simd_kernels.json";
    std::ofstream out(path);
    out << "{\n  \"benchmark\": \"simd_kernels\",\n"
        << "  \"compiled_with_simd\": "
        << (simd::compiledWithSimd() ? "true" : "false") << ",\n"
        << "  \"vector_level\": \"" << simd::levelName(best) << "\",\n"
        << "  \"bitwise_identical\": " << (all_identical ? "true" : "false")
        << ",\n  \"kernels\": [\n";
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const SimdKernelRow &row = rows[r];
        char scalar_s[32], vector_s[32], speedup[32], mops[32];
        std::snprintf(scalar_s, sizeof(scalar_s), "%.6f",
                      row.scalar_seconds);
        std::snprintf(vector_s, sizeof(vector_s), "%.6f",
                      row.vector_seconds);
        std::snprintf(speedup, sizeof(speedup), "%.3f",
                      row.scalar_seconds / row.vector_seconds);
        std::snprintf(mops, sizeof(mops), "%.3f",
                      row.ops_per_pass / row.vector_seconds / 1e6);
        out << "    {\"kernel\": \"" << row.kernel << "\", \"shape\": \""
            << row.shape << "\", \"scalar_seconds\": " << scalar_s
            << ", \"vector_seconds\": " << vector_s
            << ", \"speedup\": " << speedup
            << ", \"vector_mops\": " << mops
            << ", \"bitwise_identical\": "
            << (row.bitwise_identical ? "true" : "false") << "}"
            << (r + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    {
        const SimdKernelRow &pr = rows.back();
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f",
                      project_rows_n / pr.vector_seconds);
        out << "  \"project_rows_per_sec\": " << buf << ",\n";
    }
    out << "  \"bandwidth_sweep\": [\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const auto &pt = sweep[i];
        char copy_b[32], scale_b[32], add_b[32], triad_b[32];
        std::snprintf(copy_b, sizeof(copy_b), "%.3f", pt.copy_gbps);
        std::snprintf(scale_b, sizeof(scale_b), "%.3f", pt.scale_gbps);
        std::snprintf(add_b, sizeof(add_b), "%.3f", pt.add_gbps);
        std::snprintf(triad_b, sizeof(triad_b), "%.3f", pt.triad_gbps);
        out << "    {\"working_set_bytes\": " << pt.working_set_bytes
            << ", \"copy_gbps\": " << copy_b
            << ", \"scale_gbps\": " << scale_b
            << ", \"add_gbps\": " << add_b
            << ", \"triad_gbps\": " << triad_b << "}"
            << (i + 1 < sweep.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", path.c_str());
}

struct AnnRow
{
    std::size_t k = 0;
    std::size_t queries = 0;
    bool graph_mode = false;
    double build_seconds = 0.0;
    double exact_seconds = 0.0;
    double ann_seconds = 0.0;
    double recall = 0.0;        ///< recall@1 vs the exact scan
    double evals_fraction = 0.0; ///< distance evals computed / (n*k)
    bool hits_bitwise = true;   ///< every hit's dist2 memcmp-equal
    bool exact_path_identical = true; ///< null-finder projectRows == oracle
};

/**
 * ANN placement table (docs/ANN.md): exact per-row nearest-center scan
 * versus CenterIndex beam search over the same serving-realistic query
 * stream (queries perturbed off the centers, m=16), swept across catalog
 * sizes k. Default BuildOptions throughout, so k=300 exercises the exact
 * fallback (k <= min_graph_size) and the larger ks the graph path. Every
 * hit must carry the exact scan's dist2 bits; every miss must report a
 * distance no smaller than the true one. The exact_path_identical column
 * re-runs projectRows with a null finder and memcmps it against the
 * per-row nearestCenter oracle — the regression guard that adding the
 * finder hook left the default path untouched. CI hard-gates
 * recall_floor_met and exact_path_identical; the speedup floor (>= 3x at
 * k >= 4096) is recorded for the same jq gate but depends on the host.
 */
void
emitAnnPlacement()
{
    constexpr std::size_t kDims = 16;
    constexpr std::size_t kQueries = 2048;
    constexpr double kRecallFloor = 0.999;
    constexpr double kSpeedupFloor = 3.0;
    const std::size_t catalog_sizes[] = {300, 1024, 4096, 16384};

    // Identity projection spec: projectRows' normalize/PCA/rescale stages
    // become bit-exact pass-throughs, so the table isolates the
    // classification step the finder hook replaces.
    stats::Matrix identity(kDims, kDims);
    for (std::size_t i = 0; i < kDims; ++i)
        identity(i, i) = 1.0;
    const std::vector<double> unit_sd(kDims, 1.0);

    std::vector<AnnRow> rows;
    for (const std::size_t k : catalog_sizes) {
        AnnRow row;
        row.k = k;
        row.queries = kQueries;

        // Centers are spread Gaussians; queries sit near them (center +
        // small noise), the shape placement streams actually have.
        stats::Rng rng(0xA55E55ED ^ k);
        stats::Matrix centers(k, kDims);
        for (std::size_t r = 0; r < k; ++r)
            for (std::size_t c = 0; c < kDims; ++c)
                centers(r, c) = 4.0 * rng.nextGaussian();
        stats::Matrix queries(kQueries, kDims);
        for (std::size_t r = 0; r < kQueries; ++r)
            for (std::size_t c = 0; c < kDims; ++c)
                queries(r, c) =
                    centers(r % k, c) + 0.05 * rng.nextGaussian();

        const ann::BuildOptions bopts; // defaults: the shipped config
        ann::CenterIndex index = ann::CenterIndex::build(centers.view(),
                                                         bopts);
        row.graph_mode = index.graphMode();
        row.build_seconds = wallSeconds(
            [&]() {
                index = ann::CenterIndex::build(centers.view(), bopts);
            },
            1);

        std::vector<stats::NearestCenter> exact(kQueries);
        row.exact_seconds = wallSeconds([&]() {
            for (std::size_t r = 0; r < kQueries; ++r)
                exact[r] = stats::nearestCenter(queries.row(r), centers);
        });

        std::vector<stats::NearestCenter> approx(kQueries);
        stats::DistanceCounters counters;
        row.ann_seconds = wallSeconds([&]() {
            counters = {};
            for (std::size_t r = 0; r < kQueries; ++r)
                approx[r] = index.find(queries.row(r), &counters);
        });
        row.evals_fraction = static_cast<double>(counters.computed) /
            (static_cast<double>(kQueries) * static_cast<double>(k));

        std::size_t hits = 0;
        for (std::size_t r = 0; r < kQueries; ++r) {
            if (approx[r].index == exact[r].index) {
                ++hits;
                row.hits_bitwise = row.hits_bitwise &&
                    std::memcmp(&approx[r].dist2, &exact[r].dist2,
                                sizeof(double)) == 0;
            } else if (approx[r].dist2 < exact[r].dist2) {
                // A "better than exact" miss is a broken search, not an
                // approximation: surface it through the bitwise flag.
                row.hits_bitwise = false;
            }
        }
        row.recall = static_cast<double>(hits) /
            static_cast<double>(kQueries);

        // Regression guard: the null-finder projectRows path must still
        // be bitwise the per-row oracle computed above.
        stats::ProjectionSpec spec;
        spec.normalize_input = false;
        spec.loadings = identity.view();
        spec.rescale_sd = unit_sd;
        spec.centers = centers.view();
        const stats::ProjectedRows null_path =
            stats::projectRows(spec, queries.view());
        for (std::size_t r = 0; r < kQueries; ++r)
            row.exact_path_identical = row.exact_path_identical &&
                null_path.assignment[r] == exact[r].index &&
                std::memcmp(&null_path.dist2[r], &exact[r].dist2,
                            sizeof(double)) == 0;

        rows.push_back(row);
    }

    bool recall_ok = true, speedup_ok = true, exact_ok = true;
    bool hits_ok = true;
    for (const AnnRow &row : rows) {
        if (row.graph_mode)
            recall_ok = recall_ok && row.recall >= kRecallFloor;
        if (row.k >= 4096)
            speedup_ok = speedup_ok &&
                row.exact_seconds / row.ann_seconds >= kSpeedupFloor;
        exact_ok = exact_ok && row.exact_path_identical;
        hits_ok = hits_ok && row.hits_bitwise;
    }

    std::printf("\nANN nearest-center placement: exact scan vs "
                "CenterIndex beam search (m=%zu, %zu queries)\n",
                kDims, kQueries);
    std::printf("%8s %8s %10s %10s %10s %9s %9s %8s %9s\n", "k", "mode",
                "build_s", "exact_s", "ann_s", "speedup", "recall@1",
                "evals", "bitwise");
    for (const AnnRow &row : rows)
        std::printf("%8zu %8s %10.4f %10.4f %10.4f %8.2fx %9.4f %7.1f%% "
                    "%9s\n",
                    row.k, row.graph_mode ? "graph" : "exact",
                    row.build_seconds, row.exact_seconds, row.ann_seconds,
                    row.exact_seconds / row.ann_seconds, row.recall,
                    100.0 * row.evals_fraction,
                    row.hits_bitwise && row.exact_path_identical ? "yes"
                                                                 : "NO");

    const std::string path =
        micabench::outputDir() + "/BENCH_ann_placement.json";
    std::ofstream out(path);
    out << "{\n  \"benchmark\": \"ann_placement\",\n"
        << "  \"dims\": " << kDims << ",\n"
        << "  \"queries\": " << kQueries << ",\n"
        << "  \"recall_floor\": " << kRecallFloor << ",\n"
        << "  \"speedup_floor\": " << kSpeedupFloor << ",\n"
        << "  \"recall_floor_met\": " << (recall_ok ? "true" : "false")
        << ",\n"
        << "  \"speedup_floor_met\": " << (speedup_ok ? "true" : "false")
        << ",\n"
        << "  \"hits_bitwise_identical\": " << (hits_ok ? "true" : "false")
        << ",\n"
        << "  \"exact_path_identical\": " << (exact_ok ? "true" : "false")
        << ",\n  \"rows\": [\n";
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const AnnRow &row = rows[r];
        char build_s[32], exact_s[32], ann_s[32], speedup[32], recall[32];
        char evals[32], exact_rps[32], ann_rps[32];
        std::snprintf(build_s, sizeof(build_s), "%.6f", row.build_seconds);
        std::snprintf(exact_s, sizeof(exact_s), "%.6f", row.exact_seconds);
        std::snprintf(ann_s, sizeof(ann_s), "%.6f", row.ann_seconds);
        std::snprintf(speedup, sizeof(speedup), "%.3f",
                      row.exact_seconds / row.ann_seconds);
        std::snprintf(recall, sizeof(recall), "%.6f", row.recall);
        std::snprintf(evals, sizeof(evals), "%.6f", row.evals_fraction);
        std::snprintf(exact_rps, sizeof(exact_rps), "%.0f",
                      static_cast<double>(row.queries) / row.exact_seconds);
        std::snprintf(ann_rps, sizeof(ann_rps), "%.0f",
                      static_cast<double>(row.queries) / row.ann_seconds);
        out << "    {\"k\": " << row.k << ", \"queries\": " << row.queries
            << ", \"graph_mode\": " << (row.graph_mode ? "true" : "false")
            << ", \"build_seconds\": " << build_s
            << ", \"exact_seconds\": " << exact_s
            << ", \"ann_seconds\": " << ann_s << ", \"speedup\": " << speedup
            << ", \"exact_rows_per_sec\": " << exact_rps
            << ", \"ann_rows_per_sec\": " << ann_rps
            << ", \"recall_at_1\": " << recall
            << ", \"evals_fraction\": " << evals
            << ", \"hits_bitwise\": "
            << (row.hits_bitwise ? "true" : "false")
            << ", \"exact_path_identical\": "
            << (row.exact_path_identical ? "true" : "false") << "}"
            << (r + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", path.c_str());
}

/** True if `table` appears in MICAPHASE_SUBSTRATE_TABLES (unset = all). */
bool
tableEnabled(const char *table)
{
    const char *env = std::getenv("MICAPHASE_SUBSTRATE_TABLES");
    if (env == nullptr || *env == '\0')
        return true;
    const std::string list(env);
    const std::string name(table);
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? list.size() : comma;
        if (list.compare(pos, end - pos, name) == 0)
            return true;
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (tableEnabled("parallel"))
        emitSpeedupTable();
    if (tableEnabled("tracing"))
        emitTracingOverhead();
    if (tableEnabled("kmeans"))
        emitKMeansPruning();
    if (tableEnabled("model"))
        emitModelQuery();
    if (tableEnabled("static"))
        emitStaticAnalysis();
    if (tableEnabled("serve"))
        emitModelServe();
    if (tableEnabled("update"))
        emitModelUpdate();
    if (tableEnabled("simd"))
        emitSimdKernels();
    if (tableEnabled("ann"))
        emitAnnPlacement();
    return 0;
}
